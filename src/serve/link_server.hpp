// Online link server: sustained-traffic serving over resident schemes.
//
// The batch engine answers "what is this scheme's error rate" by streaming
// millions of Monte-Carlo frames; LinkServer answers "decode this frame,
// now" for a live request stream, which is the regime the on-line decoding
// literature (QECOOL, NEO-QEC) argues is the one that matters. The server
// keeps everything heavy resident — resolved core::Schemes, fabricated
// chips, leased sim::SimTables — so a request costs one frame, not one
// setup. Requests enter through a bounded MPMC queue (lock-free ring by
// default, mutex+cv behind the same interface) and are dispatched on a
// worker pool that coalesces queued same-scheme, gate-eligible requests
// into link::SlicedLink batches of up to 64 lanes, falling back per-request
// to the exact DataLink event path precisely as engine::unit_executor does.
//
// Determinism contract: a request's decode outcome is a pure function of
// (scheme, chip, message, request id) — the channel RNG and the simulator
// noise reseed are derived from the id's substream, never from worker
// identity, batch shape or arrival interleaving. Replaying a fixed trace
// through any worker count therefore produces byte-identical outcomes to
// serial execution (run_trace_serial below is the oracle); only latency and
// telemetry vary. Telemetry (serve/telemetry.hpp) is first-class but
// strictly diagnostic: latency histograms, queue pressure and batch shape
// never feed back into results.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scheme_catalog.hpp"
#include "link/datalink.hpp"
#include "ppv/chip.hpp"
#include "ppv/spread.hpp"
#include "serve/mpmc_ring.hpp"
#include "serve/telemetry.hpp"

namespace sfqecc::serve {

/// Substream domains of the serving path (disjoint from engine::Domain by
/// value): the per-request channel stream and simulator-noise reseed are
/// keyed by request id, which is what makes outcomes independent of
/// batching, worker count and arrival order.
inline constexpr std::uint64_t kServeChannelDomain = 0x53525643;  // "SRVC"
inline constexpr std::uint64_t kServeNoiseDomain = 0x5352564e;    // "SRVN"

/// What submit() does when the queue is full.
enum class AdmissionPolicy {
  kBlock,   ///< wait (spin/yield) for space; never sheds load
  kReject,  ///< fail the submit immediately; caller sees back-pressure
};

struct LinkServerConfig {
  std::size_t workers = 1;
  std::size_t queue_capacity = 1024;  ///< rounded up to a power of two
  bool lock_free_queue = true;        ///< MpmcRing; false = mutex+cv fallback
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  bool coalesce = true;  ///< batch gate-eligible same-scheme requests
  /// Start the worker pool in the constructor. false = workers start at the
  /// first start()/shutdown() call, letting callers pre-queue a backlog —
  /// tests use this to force deterministic coalesced batches, the load
  /// generator to exclude setup from the measured window.
  bool start_workers = true;
  std::size_t chips_per_scheme = 4;   ///< resident fabricated chips per scheme
  ppv::SpreadSpec spread;             ///< fabrication spread of resident chips
  std::uint64_t seed = 20250831;      ///< fabrication + per-request substream seed
  /// Link config of every resident evaluator. Pulse recording defaults off,
  /// exactly as campaign cell expansion sets it: serving has no waveform
  /// surface, and recording would disqualify every chip from the sliced
  /// observability gate.
  link::DataLinkConfig link = [] {
    link::DataLinkConfig base;
    base.sim.record_pulses = false;
    return base;
  }();
};

/// One serving request: send `message` through resident chip `chip` of
/// resident scheme `scheme`. The message is masked to the scheme's k bits.
struct Request {
  std::size_t scheme = 0;
  std::size_t chip = 0;
  std::uint64_t message = 0;
};

/// Decode outcome of one served request. Deliberately value-only (no
/// path/timing facts): two executions of the same trace must produce
/// byte-identical Response sequences whatever the batching did.
struct Response {
  std::uint64_t delivered = 0;  ///< decoder output bits (masked message domain)
  bool flagged = false;
  bool message_error = false;
  std::uint32_t channel_bit_errors = 0;
};

/// Client-side completion slot: the worker writes `response`, then releases
/// `done`. Poll wait() (or done directly) from the submitting thread.
struct Completion {
  Response response;
  std::atomic<std::uint32_t> done{0};

  bool ready() const noexcept { return done.load(std::memory_order_acquire) != 0; }
  void wait() const noexcept {
    while (!ready()) std::this_thread::yield();
  }
};

class LinkServer {
 public:
  /// Takes ownership of the resolved schemes; `library` is borrowed and must
  /// outlive the server. Fabricates chips_per_scheme chips per scheme
  /// (engine kPpv substreams over config.seed/spread), builds one shared
  /// SimTables per scheme, classifies each chip against the sliced
  /// observability gate, and starts the worker pool.
  LinkServer(std::vector<core::Scheme> schemes, const circuit::CellLibrary& library,
             const LinkServerConfig& config);

  /// Drains and joins the workers (shutdown() if not already called).
  ~LinkServer();

  LinkServer(const LinkServer&) = delete;
  LinkServer& operator=(const LinkServer&) = delete;

  /// Starts the worker pool (no-op when already running). Only needed after
  /// constructing with start_workers = false.
  void start();

  /// Submits one request; `completion` must stay alive until ready(). Returns
  /// false when the request was not admitted: queue full under kReject, or
  /// the server is shutting down. The request id (which fixes the RNG
  /// substreams) is assigned at submission in admission order.
  bool submit(const Request& request, Completion* completion);

  /// Blocks until every admitted request has completed. The queue keeps
  /// accepting while draining; call shutdown() for a terminal drain.
  void drain() const;

  /// Stops admission, drains, and joins the worker pool. Idempotent.
  void shutdown();

  /// Merged telemetry snapshot. Quiescent-only: call after drain() or
  /// shutdown() (worker histograms are read unlocked).
  ServerTelemetry telemetry() const;

  std::size_t scheme_count() const noexcept { return schemes_.size(); }
  std::size_t chips_per_scheme() const noexcept { return config_.chips_per_scheme; }
  const std::string& scheme_name(std::size_t scheme) const {
    return schemes_[scheme].name;
  }
  /// Message width k of scheme `scheme` (submitted messages are masked to it).
  std::size_t message_bits(std::size_t scheme) const;
  /// Whether resident chip (scheme, chip) passed the sliced observability
  /// gate at fabrication (diagnostics/tests).
  bool chip_sliceable(std::size_t scheme, std::size_t chip) const;

 private:
  struct QueuedRequest {
    Request request;
    Completion* completion = nullptr;
    std::uint64_t id = 0;
    std::uint64_t enqueue_ns = 0;
  };
  struct WorkerState;

  void worker_main(std::size_t worker_index);
  void serve_event(WorkerState& worker, const QueuedRequest& queued);
  void serve_sliced(WorkerState& worker, std::size_t scheme,
                    const QueuedRequest* const* queued, std::size_t lanes);
  void complete(WorkerState& worker, const QueuedRequest& queued,
                const link::FrameResult& frame, bool sliced);

  std::vector<core::Scheme> schemes_;
  const circuit::CellLibrary& library_;
  LinkServerConfig config_;
  std::vector<link::SchemeSpec> specs_;              ///< views into schemes_
  std::vector<std::shared_ptr<const sim::SimTables>> tables_;  ///< per scheme
  std::vector<std::vector<ppv::ChipSample>> chips_;  ///< [scheme][chip]
  std::vector<std::vector<char>> sliceable_;         ///< [scheme][chip]

  std::unique_ptr<ServeQueue<QueuedRequest>> queue_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> terminate_{false};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> accepted_{0};   ///< admitted into the queue
  std::atomic<std::uint64_t> completed_{0};  ///< responses published
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> blocked_{0};
  std::atomic<std::uint64_t> max_depth_{0};
  std::uint64_t start_ns_ = 0;
  std::atomic<std::uint64_t> stop_ns_{0};  ///< set once by shutdown()
};

// ---- fixed request traces & the serial oracle ------------------------------
//
// Replay mode: a trace fixes the request sequence, submission order fixes the
// ids, and the determinism contract above does the rest — outcomes_text over
// the responses is byte-comparable (cmp) between serial execution and served
// execution at any worker count.

/// One trace entry. `message` is stored unmasked; consumers mask to k.
struct TraceRequest {
  std::size_t scheme = 0;
  std::size_t chip = 0;
  std::uint64_t message = 0;
};

/// Deterministic synthetic trace: `count` requests uniform over
/// `schemes` x `chips` with full-width random messages, from `seed`.
std::vector<TraceRequest> synthesize_trace(std::size_t count, std::size_t schemes,
                                           std::size_t chips, std::uint64_t seed);

/// Text form of a trace ("sfqecc-trace 1" header, one request per line).
std::string trace_text(const std::vector<TraceRequest>& trace);
/// Parses trace_text; throws ContractViolation on malformed input.
std::vector<TraceRequest> parse_trace(const std::string& text);

/// Serial oracle: executes the trace one request at a time on the exact
/// DataLink event path (no queue, no workers, no slicing) with the identical
/// per-id substreams the server uses. The byte-identity baseline.
std::vector<Response> run_trace_serial(const std::vector<core::Scheme>& schemes,
                                       const circuit::CellLibrary& library,
                                       const LinkServerConfig& config,
                                       const std::vector<TraceRequest>& trace);

/// Submits the whole trace in order from this thread (ids = positions),
/// drains, and returns the responses in trace order. On a paused server
/// (start_workers = false) the whole trace is queued as a backlog before the
/// workers start — the queue capacity must hold it.
std::vector<Response> run_trace_served(LinkServer& server,
                                       const std::vector<TraceRequest>& trace);

/// One line per request in trace order — the byte-comparable outcome record:
/// "index scheme chip message delivered flagged message_error channel_bit_errors".
std::string outcomes_text(const std::vector<TraceRequest>& trace,
                          const std::vector<Response>& responses);

}  // namespace sfqecc::serve
