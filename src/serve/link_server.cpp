#include "serve/link_server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "engine/kernel.hpp"
#include "engine/scheme_artifacts.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::serve {
namespace {

/// Coalescing pulls at most one slice worth of requests off the queue per
/// dispatch, and — exactly as engine::unit_executor's kAuto mode — a lone
/// eligible request runs on the event path: a one-lane batch has no
/// word-level parallelism to win.
constexpr std::size_t kMinSliceLanes = 2;

/// Serving wall-clock for latency telemetry and throughput denominators
/// only; request outcomes never read it (the determinism contract).
/// detlint:allow(report-clock)
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t mask_message(std::uint64_t message, std::size_t k) {
  return k >= 64 ? message : message & ((std::uint64_t{1} << k) - 1);
}

Response response_from(const link::FrameResult& frame) {
  Response response;
  response.delivered = frame.delivered_message.to_u64();
  response.flagged = frame.flagged;
  response.message_error = frame.message_error;
  response.channel_bit_errors =
      static_cast<std::uint32_t>(frame.channel_bit_errors);
  return response;
}

}  // namespace

/// Per-worker scratch: one lazily built DataLink/SlicedLink per scheme over
/// the server's leased SimTables (the server's link config never changes, so
/// unlike unit_executor there is no per-cell invalidation), the worker's own
/// telemetry, and reusable batch-grouping buffers.
struct LinkServer::WorkerState {
  struct SchemeSlot {
    std::unique_ptr<link::DataLink> link;
    std::unique_ptr<link::SlicedLink> sliced;
  };
  std::vector<SchemeSlot> slots;  ///< indexed by scheme
  WorkerTelemetry telemetry;

  std::vector<QueuedRequest> batch;
  std::vector<std::vector<const QueuedRequest*>> by_scheme;
  std::vector<std::size_t> touched;  ///< schemes present in the current batch
  std::vector<const QueuedRequest*> eligible;
  std::vector<code::BitVec> messages;
  std::vector<code::BitVec> transmitted;
};

LinkServer::LinkServer(std::vector<core::Scheme> schemes,
                       const circuit::CellLibrary& library,
                       const LinkServerConfig& config)
    : schemes_(std::move(schemes)), library_(library), config_(config) {
  expects(!schemes_.empty(), "link server needs at least one scheme");
  expects(config_.chips_per_scheme >= 1, "link server needs at least one chip");
  expects(config_.queue_capacity >= 1, "link server queue capacity must be >= 1");
  for (const core::Scheme& scheme : schemes_)
    expects(scheme.encoder != nullptr, "link server scheme without encoder");

  specs_ = core::scheme_specs(schemes_);
  std::vector<engine::SchemeArtifacts> artifacts =
      engine::build_scheme_artifacts(specs_, library_);
  tables_.reserve(artifacts.size());
  for (engine::SchemeArtifacts& a : artifacts) tables_.push_back(std::move(a.tables));

  // Resident chip fabrication: the identical kPpv substream layout the
  // campaign kernel uses, so a server over (seed, spread, scheme list)
  // fabricates bit-identical chips to a campaign cell with those settings.
  chips_.resize(specs_.size());
  sliceable_.resize(specs_.size());
  engine::ChipTask task;
  task.library = &library_;
  task.spread = config_.spread;
  task.seed = config_.seed;
  task.chips = config_.chips_per_scheme;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    task.scheme = &specs_[s];
    task.scheme_index = s;
    chips_[s].resize(config_.chips_per_scheme);
    sliceable_[s].resize(config_.chips_per_scheme);
    for (std::size_t c = 0; c < config_.chips_per_scheme; ++c) {
      task.chip = c;
      engine::fabricate_chip(task, chips_[s][c]);
      sliceable_[s][c] =
          engine::chip_sliceable(chips_[s][c], config_.link.sim) ? 1 : 0;
    }
  }

  queue_ = std::make_unique<ServeQueue<QueuedRequest>>(config_.queue_capacity,
                                                       config_.lock_free_queue);
  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    auto state = std::make_unique<WorkerState>();
    state->slots.resize(specs_.size());
    state->telemetry.schemes.resize(specs_.size());
    for (std::size_t s = 0; s < specs_.size(); ++s)
      state->telemetry.schemes[s].scheme = specs_[s].name;
    state->by_scheme.resize(specs_.size());
    workers_.push_back(std::move(state));
  }
  start_ns_ = now_ns();
  if (config_.start_workers) start();
}

void LinkServer::start() {
  if (!threads_.empty()) return;
  start_ns_ = now_ns();  // measure serving from here, not from construction
  threads_.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

LinkServer::~LinkServer() { shutdown(); }

std::size_t LinkServer::message_bits(std::size_t scheme) const {
  expects(scheme < specs_.size(), "scheme index out of range");
  return specs_[scheme].encoder->message_inputs.size();
}

bool LinkServer::chip_sliceable(std::size_t scheme, std::size_t chip) const {
  expects(scheme < sliceable_.size() && chip < sliceable_[scheme].size(),
          "chip index out of range");
  return sliceable_[scheme][chip] != 0;
}

bool LinkServer::submit(const Request& request, Completion* completion) {
  expects(completion != nullptr, "submit without a completion slot");
  expects(request.scheme < specs_.size(), "request scheme out of range");
  expects(request.chip < config_.chips_per_scheme, "request chip out of range");
  if (!accepting_.load(std::memory_order_acquire)) return false;

  QueuedRequest queued;
  queued.request = request;
  queued.completion = completion;
  queued.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  queued.enqueue_ns = now_ns();

  // Count the admission before the push so drain() can never observe a
  // published-but-uncounted request; a failed admission un-counts itself.
  accepted_.fetch_add(1, std::memory_order_relaxed);
  bool counted_blocked = false;
  while (!queue_->try_push(std::move(queued))) {
    if (config_.admission == AdmissionPolicy::kReject) {
      accepted_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!counted_blocked) {
      blocked_.fetch_add(1, std::memory_order_relaxed);
      counted_blocked = true;
    }
    if (!accepting_.load(std::memory_order_acquire)) {
      accepted_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    std::this_thread::yield();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const auto depth = static_cast<std::uint64_t>(queue_->approx_size());
  std::uint64_t seen = max_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_depth_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
  return true;
}

void LinkServer::drain() const {
  while (completed_.load(std::memory_order_acquire) <
         accepted_.load(std::memory_order_acquire))
    std::this_thread::yield();
}

void LinkServer::shutdown() {
  // Callers must not race submit() against shutdown(): admission is turned
  // off first, but a submit that passed its accepting_ check concurrently
  // with this store may still enqueue after the drain below.
  accepting_.store(false, std::memory_order_release);
  start();  // a never-started pool must still serve its backlog to drain
  drain();
  terminate_.store(true, std::memory_order_release);
  for (std::thread& thread : threads_)
    if (thread.joinable()) thread.join();
  std::uint64_t expected = 0;
  stop_ns_.compare_exchange_strong(expected, now_ns(), std::memory_order_relaxed);
}

void LinkServer::worker_main(std::size_t worker_index) {
  WorkerState& worker = *workers_[worker_index];
  for (;;) {
    worker.batch.clear();
    QueuedRequest queued;
    if (!queue_->try_pop(queued)) {
      if (terminate_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    worker.batch.push_back(queued);
    // Opportunistic coalescing: take whatever else is already queued, up to
    // one full slice. Never waits — an idle queue serves the request alone
    // rather than trading latency for batch width.
    if (config_.coalesce) {
      while (worker.batch.size() < link::SlicedLink::kMaxLanes &&
             queue_->try_pop(queued))
        worker.batch.push_back(queued);
    }

    // Group by scheme, preserving queue order within each scheme.
    for (const std::size_t s : worker.touched) worker.by_scheme[s].clear();
    worker.touched.clear();
    for (const QueuedRequest& q : worker.batch) {
      if (worker.by_scheme[q.request.scheme].empty())
        worker.touched.push_back(q.request.scheme);
      worker.by_scheme[q.request.scheme].push_back(&q);
    }

    for (const std::size_t s : worker.touched) {
      // Split the scheme's group: gate-eligible requests coalesce into a
      // sliced batch (when wide enough to win), the rest replay the exact
      // event path one by one — the same policy as unit_executor's kAuto.
      worker.eligible.clear();
      for (const QueuedRequest* q : worker.by_scheme[s]) {
        if (config_.coalesce && sliceable_[s][q->request.chip] != 0)
          worker.eligible.push_back(q);
        else
          serve_event(worker, *q);
      }
      if (worker.eligible.empty()) continue;
      if (worker.eligible.size() < kMinSliceLanes) {
        for (const QueuedRequest* q : worker.eligible) serve_event(worker, *q);
        continue;
      }
      serve_sliced(worker, s, worker.eligible.data(), worker.eligible.size());
    }
  }
}

void LinkServer::serve_event(WorkerState& worker, const QueuedRequest& queued) {
  const std::size_t s = queued.request.scheme;
  WorkerState::SchemeSlot& slot = worker.slots[s];
  if (!slot.link)
    slot.link = std::make_unique<link::DataLink>(*specs_[s].encoder, tables_[s],
                                                 specs_[s].reference,
                                                 specs_[s].decoder, config_.link);
  // Install + reseed per request: outcomes must be a function of the request
  // id alone, whatever this worker served before (install_chip skips the
  // simulator reset when the chip is already resident).
  slot.link->install_chip(chips_[s][queued.request.chip]);
  slot.link->reseed_noise(
      util::substream_seed(config_.seed ^ kServeNoiseDomain, queued.id));
  util::Rng chan_rng(config_.seed ^ kServeChannelDomain, queued.id);
  const std::size_t k = specs_[s].encoder->message_inputs.size();
  const link::FrameResult frame = slot.link->send(
      code::BitVec::from_u64(k, mask_message(queued.request.message, k)), chan_rng);
  complete(worker, queued, frame, /*sliced=*/false);
}

void LinkServer::serve_sliced(WorkerState& worker, std::size_t scheme,
                              const QueuedRequest* const* queued,
                              std::size_t lanes) {
  WorkerState::SchemeSlot& slot = worker.slots[scheme];
  if (!slot.sliced)
    slot.sliced = std::make_unique<link::SlicedLink>(
        *specs_[scheme].encoder, tables_[scheme], specs_[scheme].reference,
        specs_[scheme].decoder, config_.link);
  const std::size_t k = specs_[scheme].encoder->message_inputs.size();
  worker.messages.resize(lanes);
  worker.transmitted.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    worker.messages[l] =
        code::BitVec::from_u64(k, mask_message(queued[l]->request.message, k));
  // Circuit half once for all lanes; channel + decode per lane on the lane's
  // own id substream — exactly the split simulate_chip_batch uses, so each
  // lane's frame is bit-identical to its event-path execution.
  slot.sliced->transmit(worker.messages.data(), lanes, worker.transmitted.data());
  worker.telemetry.batch.batches += 1;
  worker.telemetry.batch.width.record(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    util::Rng chan_rng(config_.seed ^ kServeChannelDomain, queued[l]->id);
    const link::FrameResult frame =
        slot.sliced->finish(worker.messages[l], worker.transmitted[l], chan_rng);
    complete(worker, *queued[l], frame, /*sliced=*/true);
  }
}

void LinkServer::complete(WorkerState& worker, const QueuedRequest& queued,
                          const link::FrameResult& frame, bool sliced) {
  queued.completion->response = response_from(frame);
  queued.completion->done.store(1, std::memory_order_release);
  SchemeTelemetry& telemetry = worker.telemetry.schemes[queued.request.scheme];
  const std::uint64_t end_ns = now_ns();
  telemetry.latency_ns.record(end_ns > queued.enqueue_ns
                                  ? end_ns - queued.enqueue_ns
                                  : 0);
  if (sliced)
    ++telemetry.sliced_requests;
  else
    ++telemetry.event_requests;
  completed_.fetch_add(1, std::memory_order_release);
}

ServerTelemetry LinkServer::telemetry() const {
  ServerTelemetry merged;
  merged.workers = workers_.size();
  merged.schemes.resize(specs_.size());
  for (std::size_t s = 0; s < specs_.size(); ++s)
    merged.schemes[s].scheme = specs_[s].name;
  for (const std::unique_ptr<WorkerState>& worker : workers_) {
    for (std::size_t s = 0; s < specs_.size(); ++s) {
      const SchemeTelemetry& from = worker->telemetry.schemes[s];
      merged.schemes[s].latency_ns.merge(from.latency_ns);
      merged.schemes[s].sliced_requests += from.sliced_requests;
      merged.schemes[s].event_requests += from.event_requests;
    }
    merged.batch.batches += worker->telemetry.batch.batches;
    merged.batch.width.merge(worker->telemetry.batch.width);
  }
  merged.queue.capacity = queue_->capacity();
  merged.queue.submitted = submitted_.load(std::memory_order_relaxed);
  merged.queue.rejected = rejected_.load(std::memory_order_relaxed);
  merged.queue.blocked = blocked_.load(std::memory_order_relaxed);
  merged.queue.max_depth = max_depth_.load(std::memory_order_relaxed);
  const std::uint64_t stop = stop_ns_.load(std::memory_order_relaxed);
  const std::uint64_t end = stop != 0 ? stop : now_ns();
  merged.wall_seconds =
      end > start_ns_ ? static_cast<double>(end - start_ns_) / 1e9 : 0.0;
  return merged;
}

// ---- traces & the serial oracle --------------------------------------------

std::vector<TraceRequest> synthesize_trace(std::size_t count, std::size_t schemes,
                                           std::size_t chips, std::uint64_t seed) {
  expects(schemes >= 1 && chips >= 1, "trace needs schemes and chips");
  util::Rng rng(seed, 0);
  std::vector<TraceRequest> trace(count);
  for (TraceRequest& request : trace) {
    request.scheme = static_cast<std::size_t>(rng.below(schemes));
    request.chip = static_cast<std::size_t>(rng.below(chips));
    request.message = rng.next_u64();
  }
  return trace;
}

std::string trace_text(const std::vector<TraceRequest>& trace) {
  std::ostringstream out;
  out << "sfqecc-trace 1\n" << trace.size() << "\n";
  for (const TraceRequest& request : trace)
    out << request.scheme << " " << request.chip << " " << request.message << "\n";
  return out.str();
}

std::vector<TraceRequest> parse_trace(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  expects(in.good() && magic == "sfqecc-trace" && version == 1,
          "not a sfqecc-trace file");
  std::size_t count = 0;
  in >> count;
  expects(!in.fail(), "trace header missing request count");
  std::vector<TraceRequest> trace(count);
  for (TraceRequest& request : trace) {
    in >> request.scheme >> request.chip >> request.message;
    expects(!in.fail(), "truncated or malformed trace line");
  }
  return trace;
}

std::vector<Response> run_trace_serial(const std::vector<core::Scheme>& schemes,
                                       const circuit::CellLibrary& library,
                                       const LinkServerConfig& config,
                                       const std::vector<TraceRequest>& trace) {
  const std::vector<link::SchemeSpec> specs = core::scheme_specs(schemes);
  const std::vector<engine::SchemeArtifacts> artifacts =
      engine::build_scheme_artifacts(specs, library);

  // Fabricate the identical resident chips the server fabricates.
  std::vector<std::vector<ppv::ChipSample>> chips(specs.size());
  engine::ChipTask task;
  task.library = &library;
  task.spread = config.spread;
  task.seed = config.seed;
  task.chips = config.chips_per_scheme;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    task.scheme = &specs[s];
    task.scheme_index = s;
    chips[s].resize(config.chips_per_scheme);
    for (std::size_t c = 0; c < config.chips_per_scheme; ++c) {
      task.chip = c;
      engine::fabricate_chip(task, chips[s][c]);
    }
  }

  std::vector<std::unique_ptr<link::DataLink>> links(specs.size());
  std::vector<Response> responses;
  responses.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceRequest& request = trace[i];
    expects(request.scheme < specs.size(), "trace scheme out of range");
    expects(request.chip < config.chips_per_scheme, "trace chip out of range");
    if (!links[request.scheme])
      links[request.scheme] = std::make_unique<link::DataLink>(
          *specs[request.scheme].encoder, artifacts[request.scheme].tables,
          specs[request.scheme].reference, specs[request.scheme].decoder,
          config.link);
    link::DataLink& dlink = *links[request.scheme];
    dlink.install_chip(chips[request.scheme][request.chip]);
    dlink.reseed_noise(util::substream_seed(config.seed ^ kServeNoiseDomain, i));
    util::Rng chan_rng(config.seed ^ kServeChannelDomain, i);
    const std::size_t k = specs[request.scheme].encoder->message_inputs.size();
    const link::FrameResult frame = dlink.send(
        code::BitVec::from_u64(k, mask_message(request.message, k)), chan_rng);
    responses.push_back(response_from(frame));
  }
  return responses;
}

std::vector<Response> run_trace_served(LinkServer& server,
                                       const std::vector<TraceRequest>& trace) {
  std::vector<Completion> completions(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    Request request;
    request.scheme = trace[i].scheme;
    request.chip = trace[i].chip;
    request.message = trace[i].message;
    expects(server.submit(request, &completions[i]),
            "replay submission rejected (use AdmissionPolicy::kBlock)");
  }
  server.start();  // no-op unless the server was built paused (backlog mode)
  server.drain();
  std::vector<Response> responses;
  responses.reserve(trace.size());
  for (const Completion& completion : completions)
    responses.push_back(completion.response);
  return responses;
}

std::string outcomes_text(const std::vector<TraceRequest>& trace,
                          const std::vector<Response>& responses) {
  expects(trace.size() == responses.size(), "trace/response size mismatch");
  std::ostringstream out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceRequest& request = trace[i];
    const Response& response = responses[i];
    out << i << " " << request.scheme << " " << request.chip << " "
        << request.message << " " << response.delivered << " "
        << (response.flagged ? 1 : 0) << " " << (response.message_error ? 1 : 0)
        << " " << response.channel_bit_errors << "\n";
  }
  return out.str();
}

}  // namespace sfqecc::serve
