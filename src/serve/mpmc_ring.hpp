// Bounded multi-producer/multi-consumer queues for the link server.
//
// MpmcRing is the lock-free fast path: a power-of-two ring where every slot
// carries an atomic sequence counter next to its value (the count/value-pair
// layout of the ROADMAP's atomic-queue reference, expressed with per-slot
// tickets instead of one double-word head). A producer claims a slot by
// advancing the shared tail ticket with one compare-exchange, publishes the
// value, then releases the slot by bumping its sequence; a consumer does the
// symmetric dance on the head ticket. No operation ever blocks on a mutex,
// no push or pop allocates, and a full (or empty) ring is reported by
// try_push (try_pop) returning false — which is exactly the hook the
// server's admission policies need.
//
// MutexQueue is the portability/debugging fallback behind the same
// interface: one mutex, one deque-free fixed ring, a condition variable for
// the blocking helpers. The server takes either via ServeQueue's runtime
// switch, and the perf microbench (BM_MpmcRingThroughput) measures the two
// against each other so the ring's advantage stays a recorded number rather
// than folklore.
//
// Both queues are FIFO per producer and linearizable; neither preserves a
// global order between concurrent producers (no MPMC queue does). The link
// server does not rely on queue order for results — every request carries
// its own RNG substream — so ordering only affects latency, never bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace sfqecc::serve {

/// Rounds `n` up to the next power of two (min 2) so ring indices reduce by
/// mask instead of modulo.
constexpr std::size_t ring_capacity(std::size_t n) noexcept {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Lock-free bounded MPMC ring (Vyukov-style per-slot sequence counters).
template <typename T>
class MpmcRing {
 public:
  /// Capacity is rounded up to a power of two; at least 2.
  explicit MpmcRing(std::size_t capacity)
      : mask_(ring_capacity(capacity) - 1), slots_(mask_ + 1) {
    for (std::size_t i = 0; i <= mask_; ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Enqueues by move; returns false when the ring is full (no blocking, no
  /// spurious failure: a false return means the ring really was full at the
  /// linearization point).
  bool try_push(T&& value) {
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[ticket & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(ticket);
      if (diff == 0) {
        // The slot is free for this ticket: claim it by advancing the tail.
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // Lost the race; `ticket` was reloaded by compare_exchange.
      } else if (diff < 0) {
        return false;  // slot still holds an unconsumed value: ring is full
      } else {
        ticket = tail_.load(std::memory_order_relaxed);  // stale ticket
      }
    }
  }

  /// Dequeues into `out`; returns false when the ring is empty.
  bool try_pop(T& out) {
    std::size_t ticket = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[ticket & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(ticket + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(slot.value);
          slot.sequence.store(ticket + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // slot not yet published: ring is empty
      } else {
        ticket = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Racy size estimate (tickets issued minus tickets consumed) for depth
  /// telemetry; never used for correctness.
  std::size_t approx_size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  // Head and tail tickets on their own cache lines so producers and
  // consumers do not false-share.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
  const std::size_t mask_;
  std::vector<Slot> slots_;
};

/// Mutex + condition-variable bounded queue with the same interface as
/// MpmcRing (plus wakeable waiting, which the blocking admission path of the
/// server layers on top via its own backoff for the ring).
template <typename T>
class MutexQueue {
 public:
  explicit MutexQueue(std::size_t capacity)
      : capacity_(ring_capacity(capacity)), slots_(capacity_) {}

  std::size_t capacity() const noexcept { return capacity_; }

  bool try_push(T&& value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == capacity_) return false;
      slots_[(head_ + size_) % capacity_] = std::move(value);
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == 0) return false;
    out = std::move(slots_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return true;
  }

  std::size_t approx_size() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Runtime-selected queue front-end: the lock-free ring by default, the
/// mutex+cv queue when the server is configured for it (A/B runs, TSan
/// cross-checks, platforms where the ring's atomics underperform).
template <typename T>
class ServeQueue {
 public:
  ServeQueue(std::size_t capacity, bool lock_free)
      : ring_(lock_free ? new MpmcRing<T>(capacity) : nullptr),
        mutexq_(lock_free ? nullptr : new MutexQueue<T>(capacity)) {}

  std::size_t capacity() const noexcept {
    return ring_ ? ring_->capacity() : mutexq_->capacity();
  }
  bool try_push(T&& value) {
    return ring_ ? ring_->try_push(std::move(value))
                 : mutexq_->try_push(std::move(value));
  }
  bool try_pop(T& out) {
    return ring_ ? ring_->try_pop(out) : mutexq_->try_pop(out);
  }
  std::size_t approx_size() const noexcept {
    return ring_ ? ring_->approx_size() : mutexq_->approx_size();
  }

 private:
  std::unique_ptr<MpmcRing<T>> ring_;
  std::unique_ptr<MutexQueue<T>> mutexq_;
};

}  // namespace sfqecc::serve
