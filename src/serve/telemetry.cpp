#include "serve/telemetry.hpp"

#include <sstream>

#include "util/json.hpp"
#include "util/table.hpp"

namespace sfqecc::serve {
namespace {

using util::roundtrip;

void histogram_fields(std::ostringstream& out, const util::LatencyHistogram& h) {
  out << "\"count\": " << h.count() << ", \"min\": " << h.min()
      << ", \"max\": " << h.max() << ", \"mean\": " << roundtrip(h.mean())
      << ", \"p50\": " << h.quantile(0.50) << ", \"p90\": " << h.quantile(0.90)
      << ", \"p99\": " << h.quantile(0.99) << ", \"p999\": " << h.quantile(0.999);
}

}  // namespace

std::string telemetry_json(const ServerTelemetry& telemetry) {
  std::ostringstream out;
  out << "{\n  \"schema\": 1,\n  \"kind\": \"serve_telemetry\",\n  \"workers\": "
      << telemetry.workers
      << ",\n  \"wall_seconds\": " << roundtrip(telemetry.wall_seconds)
      << ",\n  \"queue\": {\"capacity\": " << telemetry.queue.capacity
      << ", \"submitted\": " << telemetry.queue.submitted
      << ", \"rejected\": " << telemetry.queue.rejected
      << ", \"blocked\": " << telemetry.queue.blocked
      << ", \"max_depth\": " << telemetry.queue.max_depth
      << "},\n  \"batch\": {\"batches\": " << telemetry.batch.batches
      << ", \"width\": {";
  histogram_fields(out, telemetry.batch.width);
  out << "}},\n  \"schemes\": [\n";
  for (std::size_t i = 0; i < telemetry.schemes.size(); ++i) {
    const SchemeTelemetry& s = telemetry.schemes[i];
    const double throughput =
        telemetry.wall_seconds > 0.0
            ? static_cast<double>(s.requests()) / telemetry.wall_seconds
            : 0.0;
    out << (i ? ",\n" : "") << "    {\"scheme\": \"" << util::json_escape(s.scheme)
        << "\", \"requests\": " << s.requests()
        << ", \"sliced_requests\": " << s.sliced_requests
        << ", \"event_requests\": " << s.event_requests
        << ", \"throughput_rps\": " << roundtrip(throughput)
        << ", \"latency_ns\": {";
    histogram_fields(out, s.latency_ns);
    out << "}}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace sfqecc::serve
