// First-class serving telemetry: latency distributions, queue pressure and
// batch shape for a LinkServer.
//
// Recording is contention-free by design: every worker thread owns one
// WorkerTelemetry and records into it with plain (non-atomic) histogram
// increments; the server folds the per-worker instances into one
// ServerTelemetry snapshot with util::LatencyHistogram::merge. Queue-side
// counters (submissions, rejections, blocked admissions, depth high-water)
// are atomics on the submit path and land in the same snapshot.
//
// telemetry_json renders the snapshot as a small stable JSON document
// (schema 1). It is DELIBERATELY a separate file and schema from the
// campaign reports: latency quantiles and batch widths are runtime-
// scheduling facts — they differ run to run by construction — so they must
// never share bytes with the reports the engine proves byte-identical. The
// schema is stable in shape (keys, nesting, ordering), not in values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/latency_histogram.hpp"

namespace sfqecc::serve {

/// Per-scheme serving statistics (one per resident scheme, scheme order).
struct SchemeTelemetry {
  std::string scheme;                 ///< display name
  util::LatencyHistogram latency_ns;  ///< submit -> completion, nanoseconds
  std::uint64_t sliced_requests = 0;  ///< served inside a coalesced slice
  std::uint64_t event_requests = 0;   ///< served on the exact event path

  std::uint64_t requests() const noexcept {
    return sliced_requests + event_requests;
  }
};

/// Coalescing shape: how wide the sliced batches actually ran.
struct BatchTelemetry {
  std::uint64_t batches = 0;           ///< sliced transmits dispatched
  util::LatencyHistogram width;        ///< lanes per sliced batch (1..64)
};

/// Admission-side counters (atomically maintained on the submit path).
struct QueueTelemetry {
  std::uint64_t capacity = 0;
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< refused under AdmissionPolicy::kReject
  std::uint64_t blocked = 0;    ///< submissions that had to wait (kBlock)
  std::uint64_t max_depth = 0;  ///< queue-depth high-water mark
};

/// One merged snapshot of a server's telemetry.
struct ServerTelemetry {
  std::vector<SchemeTelemetry> schemes;
  BatchTelemetry batch;
  QueueTelemetry queue;
  std::size_t workers = 0;
  double wall_seconds = 0.0;  ///< serving wall time (throughput denominator)
};

/// What one worker thread records locally (merged by the server).
struct WorkerTelemetry {
  std::vector<SchemeTelemetry> schemes;  ///< sized to the scheme count
  BatchTelemetry batch;
};

/// Renders the stable schema-1 serving-telemetry JSON document:
/// {"schema":1,"kind":"serve_telemetry","workers":..,"wall_seconds":..,
///  "queue":{..},"batch":{..},"schemes":[{.."latency_ns":{"p50":..}}..]}.
/// Quantiles come from LatencyHistogram (p50/p90/p99/p999), throughput is
/// requests / wall_seconds.
std::string telemetry_json(const ServerTelemetry& telemetry);

}  // namespace sfqecc::serve
