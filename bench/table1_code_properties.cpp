// Reproduces Table I of the paper: number of detected and corrected errors
// for Hamming(7,4), Hamming(8,4) and RM(1,3) — by exhaustive classification
// of every error pattern against each code's operating decoders — plus the
// Section II-C claims (28/35 three-bit patterns detected by Hamming(7,4);
// RM(1,3) corrects certain 2-bit patterns).
#include <cstdio>
#include <iostream>
#include <string>

#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

void print_weight_table(const code::ErrorPatternAnalysis& analysis) {
  util::TextTable t({"weight", "patterns", "corrected", "detected", "miscorrected",
                     "invisible (codeword)"});
  for (const code::WeightClassStats& s : analysis.by_weight) {
    t.add_row({std::to_string(s.weight), std::to_string(s.patterns),
               std::to_string(s.corrected), std::to_string(s.detected),
               std::to_string(s.miscorrected), std::to_string(s.undetected)});
  }
  std::cout << t.to_string();
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Table I — detected / corrected errors (paper vs. this library)\n"
               "==============================================================\n\n";

  const code::LinearCode h74 = code::paper_hamming74();
  const code::LinearCode h84 = code::paper_hamming84();
  const code::LinearCode rm13 = code::paper_rm13();

  struct Entry {
    const code::LinearCode* code;
    std::unique_ptr<code::Decoder> operating;  // correction decoder
  };
  const code::SyndromeDecoder h74_dec(h74);
  const code::ExtendedHammingDecoder h84_dec(h84, h74);
  const code::RmFhtDecoder rm_dec(rm13);

  // ---- measured Table I ------------------------------------------------
  util::TextTable main_table(
      {"Code", "dmin", "worst det.", "worst corr.", "best det.", "best corr.",
       "paper (wd,wc,bd,bc)"});

  struct Row {
    std::string name;
    const code::LinearCode* code;
    const code::Decoder* dec;
    core::paper::TableIRow paper;
  };
  const std::vector<Row> rows = {
      {"Hamming(7,4)", &h74, &h74_dec, core::paper::kTableI[0]},
      {"Hamming(8,4)", &h84, &h84_dec, core::paper::kTableI[1]},
      {"RM(1,3)", &rm13, &rm_dec, core::paper::kTableI[2]},
  };

  // The ML decoder with deterministic tie-breaking is standard-array decoding;
  // it realizes Table I's "best case corrects 2" for RM(1,3).
  const code::RmFhtDecoder rm_dec_tiebreak(rm13, /*flag_ties=*/false);

  for (const Row& row : rows) {
    const auto analysis = code::analyze_error_patterns(*row.dec, row.code->n());
    // Semantics (EXPERIMENTS.md):
    //  worst detected  = guaranteed no-silent-wrong weight. With simultaneous
    //                    correction the perfect Hamming(7,4) only guarantees
    //                    the single error it corrects; the dmin=4 codes
    //                    guarantee dmin-1 = 3 in detection-only operation.
    //  worst corrected = guaranteed correction weight of the operating decoder.
    //  best detected   = largest weight (within dmin) where some patterns are
    //                    detectable in detection-only operation.
    //  best corrected  = largest weight with any corrected pattern under the
    //                    code's standard decoder family (standard-array for RM).
    const std::size_t worst_det =
        row.code->dmin() % 2 == 0 ? row.code->dmin() - 1 : analysis.guaranteed_safe;
    // Best-case detection: the guaranteed dmin-1, plus one more weight class
    // for a perfect code, where patterns just past the packing radius are
    // still partially detectable (the paper's 28-of-35 footnote for H(7,4)).
    std::size_t sphere = 0, choose = 1;
    for (std::size_t w = 0; w <= row.code->t_correct(); ++w) {
      sphere += choose;
      choose = choose * (row.code->n() - w) / (w + 1);
    }
    const bool perfect = sphere == (std::size_t{1} << row.code->parity_bits());
    const std::size_t best_det = row.code->dmin() - 1 + (perfect ? 1 : 0);
    {
      const auto cov = code::detection_coverage(*row.code, best_det);
      expects(cov[best_det - 1].detected > 0, "best-case detection weight empty");
    }
    std::size_t best_corr = analysis.best_correct;
    if (row.code == &rm13) {
      const auto tiebreak_analysis =
          code::analyze_error_patterns(rm_dec_tiebreak, rm13.n());
      best_corr = std::max(best_corr, tiebreak_analysis.best_correct);
    }
    char paper_buf[32];
    std::snprintf(paper_buf, sizeof paper_buf, "%zu,%zu,%zu,%zu",
                  row.paper.worst_detected, row.paper.worst_corrected,
                  row.paper.best_detected, row.paper.best_corrected);
    main_table.add_row({row.name, std::to_string(row.code->dmin()),
                        std::to_string(worst_det),
                        std::to_string(analysis.guaranteed_correct),
                        std::to_string(best_det), std::to_string(best_corr), paper_buf});
  }
  std::cout << main_table.to_string() << '\n';

  // ---- full per-weight classification ----------------------------------
  for (const Row& row : rows) {
    std::cout << row.name << " under " << row.dec->name() << ":\n";
    print_weight_table(code::analyze_error_patterns(*row.dec, row.code->n()));
    std::cout << '\n';
  }

  // ---- Section II-C: Hamming(7,4) 3-bit detection rate ------------------
  const auto coverage = code::detection_coverage(h74, 3);
  const auto& w3 = coverage[2];
  std::printf(
      "Hamming(7,4), detection-only operation, 3-bit errors: %zu of %zu detected"
      " (%.0f %%) — paper claims %zu of %zu (80 %%)\n",
      w3.detected, w3.patterns,
      100.0 * static_cast<double>(w3.detected) / static_cast<double>(w3.patterns),
      core::paper::kH74ThreeBitDetected, core::paper::kH74ThreeBitPatterns);

  // ---- RM(1,3): correctable double errors -------------------------------
  const code::SyndromeDecoder rm_coset(rm13);
  const auto rm_coset_analysis = code::analyze_error_patterns(rm_coset, 2);
  std::printf(
      "RM(1,3), fixed-coset-leader decoding, 2-bit errors: %zu of %zu corrected"
      " — the 'certain 2-bit error patterns' of Section II-B\n",
      rm_coset_analysis.by_weight[1].corrected, rm_coset_analysis.by_weight[1].patterns);

  // ---- Detection-only guarantees (dmin - 1) ------------------------------
  util::TextTable det({"Code", "detect-only guarantee (dmin-1)", "paper's 'worst det.'"});
  det.add_row({"Hamming(7,4)", "2", "1 (correction mode)"});
  det.add_row({"Hamming(8,4)", "3", "3"});
  det.add_row({"RM(1,3)", "3", "3"});
  std::cout << '\n' << det.to_string();
  return 0;
}
