#include "bench_to_json.hpp"

#include <cstdio>
#include <fstream>

namespace sfqecc::bench {
namespace {

/// Converts a benchmark time into nanoseconds from the run's declared unit.
double to_ns(double value, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond: return value;
    case benchmark::kMicrosecond: return value * 1e3;
    case benchmark::kMillisecond: return value * 1e6;
    case benchmark::kSecond: return value * 1e9;
  }
  return value;
}

/// Minimal JSON string escape (names are benchmark identifiers, but be safe).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

JsonRecorder::JsonRecorder(std::string out_path) : out_path_(std::move(out_path)) {}

bool JsonRecorder::ReportContext(const Context& context) {
  return benchmark::ConsoleReporter::ReportContext(context);
}

void JsonRecorder::ReportRuns(const std::vector<Run>& runs) {
  for (const Run& run : runs) {
    if (run.error_occurred) continue;
    if (run.run_type != Run::RT_Iteration) continue;  // skip aggregate rows
    BenchRecord rec;
    rec.name = run.benchmark_name();
    rec.real_time_ns = to_ns(run.GetAdjustedRealTime(), run.time_unit);
    rec.cpu_time_ns = to_ns(run.GetAdjustedCPUTime(), run.time_unit);
    rec.iterations = run.iterations;
    records_.push_back(std::move(rec));
  }
  benchmark::ConsoleReporter::ReportRuns(runs);
}

bool JsonRecorder::write() const { return write_bench_json(out_path_, records_); }

bool write_bench_json(const std::string& path, const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_to_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": 1,\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "    {\"name\": \"" << escape(r.name) << "\", \"real_time_ns\": "
        << r.real_time_ns << ", \"cpu_time_ns\": " << r.cpu_time_ns
        << ", \"iterations\": " << r.iterations << "}";
    out << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace sfqecc::bench
