#include "bench_to_json.hpp"

namespace sfqecc::bench {
namespace {

/// Converts a benchmark time into nanoseconds from the run's declared unit.
double to_ns(double value, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond: return value;
    case benchmark::kMicrosecond: return value * 1e3;
    case benchmark::kMillisecond: return value * 1e6;
    case benchmark::kSecond: return value * 1e9;
  }
  return value;
}

}  // namespace

JsonRecorder::JsonRecorder(std::string out_path) : out_path_(std::move(out_path)) {}

bool JsonRecorder::ReportContext(const Context& context) {
  return benchmark::ConsoleReporter::ReportContext(context);
}

void JsonRecorder::ReportRuns(const std::vector<Run>& runs) {
  for (const Run& run : runs) {
    if (run.error_occurred) continue;
    if (run.run_type != Run::RT_Iteration) continue;  // skip aggregate rows
    BenchRecord rec;
    rec.name = run.benchmark_name();
    rec.real_time_ns = to_ns(run.GetAdjustedRealTime(), run.time_unit);
    rec.cpu_time_ns = to_ns(run.GetAdjustedCPUTime(), run.time_unit);
    rec.iterations = run.iterations;
    // User counters arrive rate-finalized (benchmark::Counter::kIsRate is
    // already divided by elapsed time); UserCounters is an ordered map, so
    // the capture order is deterministic.
    for (const auto& [name, counter] : run.counters)
      rec.counters.push_back(BenchCounter{name, counter.value});
    records_.push_back(std::move(rec));
  }
  benchmark::ConsoleReporter::ReportRuns(runs);
}

bool JsonRecorder::write() const { return write_bench_json(out_path_, records_); }

}  // namespace sfqecc::bench
