// Shared CLI layer of the serving endpoints (link_server and link_loadgen).
//
// Both binaries stand up the same serve::LinkServer, so the server-defining
// flag set — schemes, resident chips, fabrication spread/seed, link noise,
// queue shape, admission policy, worker count — parses through this one
// translation unit, exactly as campaign_cli.hpp does for the campaign
// endpoints: give the server and the load generator the same flags and they
// build the same server by construction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign_cli.hpp"
#include "serve/link_server.hpp"

namespace sfqecc::cli {

/// The server-defining flag set. Drivers call consume() for each argv entry
/// (before their own flags) and schemes() once after the loop.
class ServeFlags {
 public:
  /// Returns true when `argv_i` was recognized and consumed.
  bool consume(const char* argv_i);

  /// Resolves the --schemes descriptors (default: the hamming:7,4 + rm:1,3
  /// pair the serving smoke drives) against the builtin catalog.
  std::vector<core::Scheme> schemes(const circuit::CellLibrary& library) const;

  const serve::LinkServerConfig& config() const noexcept { return config_; }
  serve::LinkServerConfig& config() noexcept { return config_; }

  /// Help text block for the shared flags (embedded in each driver's usage).
  static const char* help();

 private:
  serve::LinkServerConfig config_;
  std::vector<std::string> scheme_descriptors_;
  std::string schemes_arg_;
  std::vector<std::size_t> scheme_offsets_;
};

}  // namespace sfqecc::cli
