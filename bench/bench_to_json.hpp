// Tees google-benchmark results into a machine-readable BENCH_*.json perf
// record at the repo root, so successive PRs can diff the performance
// trajectory of the hot paths without parsing console output (the diff
// itself is the bench_diff tool).
//
// Usage inside a benchmark binary:
//
//   int main(int argc, char** argv) {
//     benchmark::Initialize(&argc, argv);
//     sfqecc::bench::JsonRecorder recorder("BENCH_fig5.json");
//     benchmark::RunSpecifiedBenchmarks(&recorder);  // console output intact
//     recorder.write();
//   }
//
// The record type and schema live in bench_json_io.hpp (no google-benchmark
// dependency there).
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json_io.hpp"

namespace sfqecc::bench {

/// A benchmark::BenchmarkReporter that tees measurements into BenchRecords
/// while delegating display to the standard console reporter.
class JsonRecorder : public benchmark::ConsoleReporter {
 public:
  /// `out_path` is where write() puts the JSON (conventionally the repo root).
  explicit JsonRecorder(std::string out_path);

  bool ReportContext(const Context& context) override;
  void ReportRuns(const std::vector<Run>& runs) override;

  const std::vector<BenchRecord>& records() const noexcept { return records_; }

  /// Mutable access, for attaching derived counters (e.g. an event-vs-sliced
  /// throughput ratio computed across two records) after the runs finish and
  /// before write().
  std::vector<BenchRecord>& mutable_records() noexcept { return records_; }

  /// Serializes the collected records to `out_path`. Returns false (and
  /// prints to stderr) when the file cannot be written.
  bool write() const;

 private:
  std::string out_path_;
  std::vector<BenchRecord> records_;
};

}  // namespace sfqecc::bench
