// One-command perf regression check: diffs two BENCH_*.json files (the
// committed baseline vs a fresh perf_microbench run) and prints per-benchmark
// deltas.
//
// Usage: bench_diff <baseline.json> <fresh.json> [--threshold=PCT]
//
// Records carrying user counters in both files compare counter-by-counter
// as throughputs (higher is better; a drop beyond the threshold is the
// regression) instead of by cpu_time — for threaded benchmarks, per-thread
// cpu time is inconsistent across thread counts while frames/sec is the
// quantity of interest. Records without common counters compare by cpu_time
// as before (lower is better).
//
// Exit status: 0 when no benchmark regressed by more than the threshold
// (default 10 %), 1 when at least one did, 2 on usage/file errors. Typical
// perf-PR flow:
//
//   ./build/perf_microbench --bench_json_out=/tmp/BENCH_new.json
//   ./build/bench_diff BENCH_fig5.json /tmp/BENCH_new.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "bench_json_io.hpp"
#include "util/table.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  double threshold_pct = 10.0;
  const char* baseline_path = nullptr;
  const char* fresh_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      char* end = nullptr;
      threshold_pct = std::strtod(argv[i] + 12, &end);
      if (end == argv[i] + 12 || *end != '\0') {
        std::fprintf(stderr, "bench_diff: bad value '%s' for --threshold\n",
                     argv[i] + 12);
        return 2;
      }
    } else if (!baseline_path) {
      baseline_path = argv[i];
    } else if (!fresh_path) {
      fresh_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (!baseline_path || !fresh_path) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <fresh.json> [--threshold=PCT]\n");
    return 2;
  }

  std::vector<bench::BenchRecord> baseline, fresh;
  if (!bench::load_bench_json(baseline_path, baseline) ||
      !bench::load_bench_json(fresh_path, fresh))
    return 2;

  std::map<std::string, const bench::BenchRecord*> baseline_by_name;
  for (const bench::BenchRecord& r : baseline) baseline_by_name[r.name] = &r;

  util::TextTable table({"benchmark", "baseline", "fresh", "delta", "verdict"});
  std::size_t regressions = 0, matched = 0;
  for (const bench::BenchRecord& now : fresh) {
    const auto it = baseline_by_name.find(now.name);
    if (it == baseline_by_name.end()) {
      table.add_row({now.name, "-", util::fixed(now.cpu_time_ns, 0) + " ns", "-",
                     "new"});
      continue;
    }
    const bench::BenchRecord& base = *it->second;

    // Counter-by-counter throughput comparison when both sides carry a
    // counter of the same name; cpu_time only when no counter pairs up.
    bool compared_counters = false;
    for (const bench::BenchCounter& counter : now.counters) {
      const bench::BenchCounter* before_counter = nullptr;
      for (const bench::BenchCounter& c : base.counters)
        if (c.name == counter.name) {
          before_counter = &c;
          break;
        }
      const std::string row_name = now.name + " [" + counter.name + "]";
      if (!before_counter) {
        table.add_row({row_name, "-", util::fixed(counter.value, 2), "-", "new"});
        continue;
      }
      compared_counters = true;
      ++matched;
      const double before = before_counter->value;
      const double delta_pct =
          before > 0.0 ? (counter.value - before) / before * 100.0 : 0.0;
      const bool regressed = delta_pct < -threshold_pct;  // rate: drop is bad
      if (regressed) ++regressions;
      table.add_row({row_name, util::fixed(before, 2), util::fixed(counter.value, 2),
                     (delta_pct >= 0 ? "+" : "") + util::fixed(delta_pct, 1) + " %",
                     regressed                    ? "REGRESSION"
                     : delta_pct > threshold_pct ? "improved"
                                                 : "ok"});
    }
    for (const bench::BenchCounter& c : base.counters) {
      bool still_there = false;
      for (const bench::BenchCounter& counter : now.counters)
        if (counter.name == c.name) {
          still_there = true;
          break;
        }
      if (!still_there)
        table.add_row({now.name + " [" + c.name + "]", util::fixed(c.value, 2), "-",
                       "-", "removed"});
    }

    if (!compared_counters) {
      ++matched;
      const double before = base.cpu_time_ns;
      const double delta_pct = before > 0.0
                                   ? (now.cpu_time_ns - before) / before * 100.0
                                   : 0.0;
      const bool regressed = delta_pct > threshold_pct;
      if (regressed) ++regressions;
      table.add_row({now.name, util::fixed(before, 0) + " ns",
                     util::fixed(now.cpu_time_ns, 0) + " ns",
                     (delta_pct >= 0 ? "+" : "") + util::fixed(delta_pct, 1) + " %",
                     regressed        ? "REGRESSION"
                     : delta_pct < -threshold_pct ? "improved"
                                                  : "ok"});
    }
    baseline_by_name.erase(it);
  }
  for (const auto& [name, record] : baseline_by_name)
    table.add_row({name, util::fixed(record->cpu_time_ns, 0) + " ns", "-", "-",
                   "removed"});

  std::cout << table.to_string();
  std::printf("\n%zu comparison(s) (cpu time or counters), %zu regression(s) beyond "
              "%.1f %%\n",
              matched, regressions, threshold_pct);
  if (matched == 0) {
    // A vacuous comparison (empty/filtered fresh run) must not pass a gate.
    std::fprintf(stderr, "bench_diff: no benchmarks in common — nothing compared\n");
    return 2;
  }
  return regressions == 0 ? 0 : 1;
}
