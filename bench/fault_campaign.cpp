// Systematic single-cell fault-injection campaign.
//
// For every cell of every encoder, kill that cell (dead mode), run all 16
// messages through the pulse-level link, and classify the outcome under the
// scheme's operating decoder:
//   harmless     — every message still delivered correctly,
//   corrected    — bit errors occurred but the decoder fixed all of them,
//   flagged      — uncorrectable but always detected (error flag raised),
//   silent-wrong — at least one message accepted with the wrong content.
//
// This explains Fig. 5 structurally: output-adjacent cells are correctable,
// shared cells in an even-weight code (Hamming(8,4)) always produce
// even-weight — hence detectable — errors, while RM(1,3)'s shared XORs can
// reproduce codeword patterns and deliver silently wrong messages.
#include <cstdio>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

struct Classification {
  std::size_t harmless = 0;
  std::size_t corrected = 0;
  std::size_t flagged = 0;
  std::size_t silent_wrong = 0;
};

Classification run_campaign(const core::PaperScheme& scheme,
                            const circuit::CellLibrary& library) {
  Classification result;
  link::DataLinkConfig config;
  config.sim.record_pulses = false;
  link::DataLink dlink(*scheme.encoder, library, scheme.code.get(),
                       scheme.decoder.get(), config);
  util::Rng rng(1);

  const std::size_t cells = scheme.encoder->netlist.cell_count();
  for (circuit::CellId victim = 0; victim < cells; ++victim) {
    ppv::ChipSample chip;
    chip.faults.assign(cells, sim::CellFault{});
    chip.health_ratios.assign(cells, 0.0);
    chip.faults[victim] = sim::CellFault{sim::FaultMode::kDead, 0.0};
    dlink.install_chip(chip);

    bool any_error_bits = false, any_flag = false, any_wrong = false;
    for (std::uint64_t m = 0; m < 16; ++m) {
      const link::FrameResult frame =
          dlink.send(code::BitVec::from_u64(4, m), rng);
      any_error_bits = any_error_bits || frame.encoder_bit_errors > 0;
      any_flag = any_flag || frame.flagged;
      any_wrong = any_wrong || frame.message_error;
    }
    if (any_wrong)
      ++result.silent_wrong;
    else if (any_flag)
      ++result.flagged;
    else if (any_error_bits)
      ++result.corrected;
    else
      ++result.harmless;
  }
  return result;
}

}  // namespace

int main() {
  const auto& library = circuit::coldflux_library();
  std::cout
      << "==================================================================\n"
         "Single-cell kill campaign: outcome of each possible dead cell\n"
         "(16 messages per fault, pulse-level simulation, operating decoders)\n"
         "==================================================================\n\n";

  util::TextTable table({"Scheme", "cells", "harmless", "corrected", "flagged",
                         "silent-wrong", "silent-wrong %"});
  for (auto id : {core::SchemeId::kNoEncoder, core::SchemeId::kRm13,
                  core::SchemeId::kHamming74, core::SchemeId::kHamming84}) {
    const core::PaperScheme scheme = core::make_scheme(id, library);
    const Classification c = run_campaign(scheme, library);
    const std::size_t cells = scheme.encoder->netlist.cell_count();
    table.add_row({scheme.name, std::to_string(cells), std::to_string(c.harmless),
                   std::to_string(c.corrected), std::to_string(c.flagged),
                   std::to_string(c.silent_wrong),
                   util::percent(static_cast<double>(c.silent_wrong) /
                                     static_cast<double>(cells),
                                 1)});
  }
  std::cout << table.to_string() << '\n';

  std::cout <<
      "Reading the table:\n"
      "  * Hamming(8,4): every internal data-path fault flips an even number\n"
      "    of codeword bits (even-weight code), which SEC-DED detects — its\n"
      "    only silent-wrong cells are the four message-input splitters\n"
      "    (the bit is erased BEFORE encoding, invisible to any code) and the\n"
      "    odd-coverage clock subtrees.\n"
      "  * Hamming(7,4) additionally miscorrects the two-bit patterns of its\n"
      "    shared data XORs and input-chain DFF taps.\n"
      "  * RM(1,3)'s high-fanout shared XORs reproduce codeword patterns\n"
      "    (e.g. the x1 generator row), so faults can be invisible outright.\n"
      "  * The no-encoder link converts every converter fault into errors.\n"
      "This is the circuit-structure mechanism behind the Fig. 5 ordering:\n"
      "multiply each class by the per-cell-type failure probabilities of the\n"
      "margin model and the paper's P(N=0) ordering follows.\n";
  return 0;
}
