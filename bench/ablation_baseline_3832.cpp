// Baseline comparison against the prior-art SFQ ECC encoder of Peng et al.
// [14]: a (38,32) linear block code with a reported cost of 84 XOR gates and
// 135 DFFs. We run the same code through our synthesis pipeline and compare
// the resulting circuit against the paper's lightweight 4-bit encoders —
// quantifying the motivation of the paper: a 32-bit-interface encoder is far
// beyond the pin/power budget of a small cryogenic link.
#include <cstdio>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

int main() {
  const auto& library = circuit::coldflux_library();

  std::cout << "=====================================================================\n"
               "Baseline: (38,32) encoder of Peng et al. [14] vs the paper's encoders\n"
               "=====================================================================\n\n";

  const code::LinearCode baseline = code::code3832();
  const circuit::BuiltEncoder built = circuit::build_encoder(baseline, library);
  const circuit::NetlistStats stats =
      circuit::compute_stats(built.netlist, library, built.clock_input);

  std::printf("(38,32) shortened-Hamming baseline, synthesized by this library:\n"
              "  %s\n"
              "  %zu JJs, %.1f uW static, %.3f mm^2, logic depth %zu\n",
              stats.inventory().c_str(), stats.jj_count, stats.static_power_uw,
              stats.area_mm2, built.logic_depth);
  std::printf("  [14] reports %zu XOR gates and %zu DFFs for its (38,32) encoder\n"
              "  (no public column order; shapes agree within the same order of\n"
              "  magnitude — our low-weight-first columns give a leaner encoder).\n\n",
              core::paper::kPeng3832XorGates, core::paper::kPeng3832Dffs);

  util::TextTable table({"Encoder", "message bits", "XOR", "DFF", "SPL", "SFQ-DC",
                         "JJs", "Power (uW)", "JJ / message bit"});
  auto add_row = [&](const std::string& name, const code::LinearCode& c) {
    const circuit::BuiltEncoder enc = circuit::build_encoder(c, library);
    const circuit::NetlistStats s =
        circuit::compute_stats(enc.netlist, library, enc.clock_input);
    table.add_row({name, std::to_string(c.k()),
                   std::to_string(s.count(circuit::CellType::kXor)),
                   std::to_string(s.count(circuit::CellType::kDff)),
                   std::to_string(s.count(circuit::CellType::kSplitter)),
                   std::to_string(s.count(circuit::CellType::kSfqToDc)),
                   std::to_string(s.jj_count), util::fixed(s.static_power_uw, 1),
                   util::fixed(static_cast<double>(s.jj_count) /
                                   static_cast<double>(c.k()),
                               1)});
  };
  add_row("Hamming(7,4)", code::paper_hamming74());
  add_row("Hamming(8,4)", code::paper_hamming84());
  add_row("RM(1,3)", code::paper_rm13());
  add_row("(38,32) [14]", baseline);
  std::cout << table.to_string() << '\n';

  std::cout <<
      "Interpretation: the (38,32) baseline needs a 38-channel interface and an\n"
      "order of magnitude more JJs — infeasible under the ~40-pin budget of a\n"
      "5x5 mm^2 SFQ chip, which is exactly why the paper restricts the design\n"
      "space to 8 output channels and 4-bit messages.\n";
  return 0;
}
