// Scaling studies beyond the paper's 4-bit operating point:
//
//  1. RM(1,m) family — circuit cost of first-order Reed-Muller encoders as
//     the interface widens (the "recursive nature enables scalable hardware"
//     claim of Section II-B, priced in JJs).
//  2. Hamming(2^r-1) family and their extended variants.
//  3. The 8-bit-message design point the paper's introduction motivates
//     (8-bit SFQ processors): Hamming(12,8), extended Hamming(13,8), RM(1,4)
//     with 8 of 16 data rows is not defined — instead we report the natural
//     candidates and their costs under the same 8-channel-per-chip reasoning.
//  4. BCH vs Hamming at short length (Section II's complexity claim):
//     encoder cost of BCH(15,11,3) (Hamming-equivalent), BCH(15,7,5) and
//     BCH(15,5,7) under the same pipeline.
#include <cstdio>
#include <iostream>

#include "code/hsiao.hpp"
#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

void add_code_row(util::TextTable& table, const code::LinearCode& c,
                  std::size_t dmin_hint = 0) {
  const auto& library = circuit::coldflux_library();
  const circuit::BuiltEncoder built = circuit::build_encoder(c, library);
  const circuit::NetlistStats stats =
      circuit::compute_stats(built.netlist, library, built.clock_input);
  const std::size_t d = dmin_hint != 0 ? dmin_hint : c.dmin();
  table.add_row({c.name(), std::to_string(c.n()), std::to_string(c.k()),
                 std::to_string(d), std::to_string(built.logic_depth),
                 std::to_string(stats.count(circuit::CellType::kXor)),
                 std::to_string(stats.count(circuit::CellType::kDff)),
                 std::to_string(stats.count(circuit::CellType::kSplitter)),
                 std::to_string(stats.jj_count),
                 util::fixed(stats.static_power_uw, 1),
                 util::fixed(stats.area_mm2, 3)});
}

util::TextTable make_table() {
  return util::TextTable({"code", "n", "k", "dmin", "depth", "XOR", "DFF", "SPL",
                          "JJs", "uW", "mm^2"});
}

}  // namespace

int main() {
  std::cout << "==============================================\n"
               "Scaling 1 — first-order Reed-Muller RM(1,m)\n"
               "==============================================\n";
  {
    util::TextTable table = make_table();
    for (std::size_t m = 2; m <= 6; ++m) add_code_row(table, code::reed_muller(1, m));
    std::cout << table.to_string() << '\n';
  }

  std::cout << "==============================================\n"
               "Scaling 2 — Hamming family and extensions\n"
               "==============================================\n";
  {
    util::TextTable table = make_table();
    for (std::size_t r = 2; r <= 5; ++r) {
      const code::LinearCode h = code::hamming_code(r);
      add_code_row(table, h);
      add_code_row(table, code::extend_with_overall_parity(h));
    }
    std::cout << table.to_string() << '\n';
  }

  std::cout << "=========================================================\n"
               "Scaling 3 — encoders for the 8-bit SFQ processors of [15-18]\n"
               "=========================================================\n";
  {
    util::TextTable table = make_table();
    // Hamming(12,8): shortened Hamming(15,11) keeping 8 data columns.
    const code::LinearCode h15 = code::hamming_code(4);
    code::Gf2Matrix g12(8, 12);
    for (std::size_t i = 0; i < 8; ++i) {
      g12.set(i, i, true);
      for (std::size_t p = 0; p < 4; ++p) g12.set(i, 8 + p, h15.generator().get(i, 11 + p));
    }
    const code::LinearCode h128("Hamming(12,8)", g12, 3);
    add_code_row(table, h128);
    add_code_row(table, code::extend_with_overall_parity(h128));
    add_code_row(table, code::hsiao_13_8());
    std::cout << table.to_string() << '\n';
    std::cout << "A 13-channel interface already exceeds the paper's 8-channel\n"
                 "budget: SEC-DED on bytes costs 5 extra cryogenic cables. The\n"
                 "Hsiao odd-weight-column construction is the cheaper SEC-DED\n"
                 "encoder at the same (13,8) design point.\n\n";
  }

  std::cout << "==============================================\n"
               "Scaling 4 — BCH vs Hamming at length 15 (Sec. II)\n"
               "==============================================\n";
  {
    util::TextTable table = make_table();
    add_code_row(table, code::hamming_code(4));
    add_code_row(table, code::BchCode(4, 3).to_linear_code());
    add_code_row(table, code::BchCode(4, 5).to_linear_code());
    add_code_row(table, code::BchCode(4, 7).to_linear_code());
    std::cout << table.to_string() << '\n';
    std::cout <<
        "BCH(15,11,3) is Hamming-equivalent but its cyclic-systematic generator\n"
        "densifies the parity columns, costing more XORs after CSE — the\n"
        "Section II observation that BCH brings no benefit at short lengths.\n"
        "Higher-distance BCH codes (t = 2, 3) scale the encoder superlinearly\n"
        "and their Berlekamp-Massey decoders dwarf syndrome lookup.\n";
  }
  return 0;
}
