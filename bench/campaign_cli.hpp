// Shared CLI layer of the campaign endpoints (campaign_runner and
// campaign_coordinator).
//
// The distributed fabric has no config-shipping channel: coordinator and
// workers each reconstruct the campaign from their own command lines, and the
// manifest fingerprint check is what catches a disagreement. Parsing the
// campaign-defining flags through this one translation unit makes agreement
// the default — give both endpoints the same flags and they expand the same
// cells, schemes and work units by construction.
//
// Also home to the caret-diagnostic helpers (fail_at and friends) every
// campaign endpoint uses for malformed flag values.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/cell_library.hpp"
#include "core/scheme_catalog.hpp"
#include "engine/campaign_spec.hpp"

namespace sfqecc::cli {

/// Program name used in diagnostics (default "campaign_runner"); drivers set
/// it first thing in main.
void set_program(const char* name);

/// Prints "<program>: <message>", the offending argument and a caret under
/// byte `offset` of the argument, then exits 2.
[[noreturn]] void fail_at(const std::string& arg, std::size_t offset,
                          const std::string& message);

/// One comma-separated token of a flag value; `offset` is its byte position
/// within the whole argument (for caret messages).
struct Token {
  std::string text;
  std::size_t offset;
};

/// Splits `--flag=a,b,c` into tokens, rejecting an empty value and empty
/// tokens ("a,,b", trailing/leading commas) with a caret.
std::vector<Token> split_tokens(const std::string& arg, std::size_t value_offset,
                                const std::string& value);

std::vector<double> parse_doubles(const std::string& arg, std::size_t value_offset,
                                  const std::string& value);

std::size_t parse_size(const std::string& arg, std::size_t value_offset,
                       const std::string& value);

bool match_flag(const char* arg, const char* name, std::string& value,
                std::size_t& value_offset);

/// Resolves --schemes descriptors against the builtin catalog (shared by the
/// campaign and serving endpoints): parse errors get a caret into the flag
/// argument `arg` at the descriptor's `offsets` entry, resolution errors the
/// catalog's message. Pass an empty `arg` for an internal default list.
std::vector<core::Scheme> resolve_schemes(const std::string& arg,
                                          const std::vector<std::string>& descriptors,
                                          const std::vector<std::size_t>& offsets,
                                          const circuit::CellLibrary& library);

/// The campaign-defining flag set — everything that feeds the campaign
/// fingerprint (workload scalars, sweep axes, schemes, shard size) plus
/// scheme listing. Drivers call consume() for each argv entry (first, before
/// their own flags) and finalize() once after the loop.
class CampaignFlags {
 public:
  CampaignFlags();

  /// Returns true when `arg` was one of the campaign flags (consumed).
  /// Malformed values exit 2 with a caret.
  bool consume(const char* arg);

  /// Assembles the sweep axes into spec and resolves the schemes against the
  /// catalog (the four paper schemes when --schemes was absent).
  void finalize(const circuit::CellLibrary& library);

  engine::CampaignSpec spec;       ///< valid after finalize()
  std::size_t shard_chips = 32;    ///< --shard (campaign_fingerprint input)
  bool want_list_schemes = false;  ///< --list-schemes

  /// Resolved schemes; valid after finalize(). Owned here — the engine
  /// borrows views for the run's duration.
  const std::vector<core::Scheme>& schemes() const { return schemes_; }
  std::vector<engine::CampaignCell> cells() const {
    return engine::expand_cells(spec);
  }

  /// --list-schemes output: descriptor, (n,k,d), rate, decoder and the
  /// Table-II-style circuit inventory, plus the catalog family help.
  int list_schemes(const circuit::CellLibrary& library) const;

 private:
  std::string schemes_arg_;  // full --schemes argument, for carets
  std::vector<std::string> scheme_descriptors_;
  std::vector<std::size_t> scheme_offsets_;
  int spread_dist_ = 0;  // 0 uniform, 1 gaussian
  std::vector<double> spreads_pct_, noises_, attenuations_, clocks_, jitters_;
  std::vector<Token> arq_tokens_;
  std::string arq_arg_;
  std::vector<core::Scheme> schemes_;
};

/// The campaign-flag section of the usage text, shared verbatim by both
/// endpoints' --help.
const char* campaign_flags_help();

}  // namespace sfqecc::cli
