// Reproduces Fig. 3 of the paper: pulse-level simulation of the Hamming(8,4)
// encoder at 5 GHz with thermal noise at 4.2 K. The message '1011' is applied
// at ~0.1 ns and the codeword '01100110' appears two clock cycles later at
// ~0.4 ns on the SFQ-to-DC outputs.
//
// Output: an ASCII rendering of the 13 traces (m1..m4, clk, c1..c8) over the
// paper's 2.5 ns window plus a CSV dump (fig3_waveforms.csv) with the
// rasterized analog waveforms (600 uV input pulses, 400 uV output levels,
// additive thermal noise) for external plotting.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

int main() {
  const auto& library = circuit::coldflux_library();
  const code::LinearCode h84 = code::paper_hamming84();
  const circuit::BuiltEncoder built = circuit::build_encoder(h84, library);

  constexpr double kPeriodPs = 200.0;  // 5 GHz
  constexpr double kWindowPs = 2500.0;

  sim::SimConfig config;
  config.jitter_sigma_ps = 0.8;  // thermal noise at 4.2 K
  config.noise_seed = 42;
  sim::EventSimulator simulator(built.netlist, library, config);

  // The paper applies message 1011 at ~0.1 ns. We run repeating frames every
  // 3 cycles to fill the 2.5 ns window with activity like Fig. 3: each frame
  // applies a fresh message between clock edges.
  const char* frame_messages[] = {"1011", "0110", "1101", "0011"};
  const std::size_t frames = 4;
  for (std::size_t f = 0; f < frames; ++f) {
    const code::BitVec m = code::BitVec::from_string(frame_messages[f]);
    const double t = 100.0 + static_cast<double>(f) * 3.0 * kPeriodPs;
    for (std::size_t b = 0; b < 4; ++b)
      if (m.get(b)) simulator.inject_pulse(built.message_inputs[b], t);
  }
  simulator.inject_clock(built.clock_input, kPeriodPs, kPeriodPs, kWindowPs);
  simulator.run_until(kWindowPs);

  // ---- verify the paper's headline timing ----------------------------------
  code::BitVec word_at_04ns(8);
  {
    // Fresh single-frame run to read levels exactly at 0.45 ns.
    sim::EventSimulator single(built.netlist, library, config);
    const code::BitVec m = code::BitVec::from_string("1011");
    for (std::size_t b = 0; b < 4; ++b)
      if (m.get(b)) single.inject_pulse(built.message_inputs[b], 100.0);
    single.inject_clock(built.clock_input, kPeriodPs, kPeriodPs, 400.5);
    single.run_until(450.0);
    for (std::size_t j = 0; j < 8; ++j)
      word_at_04ns.set(j, single.dc_level(built.codeword_outputs[j]));
  }
  std::printf("message %s applied at %.1f ns -> codeword %s at ~%.1f ns "
              "(paper: %s -> %s at %.1f ns)\n\n",
              core::paper::kFig3Message, core::paper::kFig3MessageTimeNs,
              word_at_04ns.to_string().c_str(), core::paper::kFig3CodewordTimeNs,
              core::paper::kFig3Message, core::paper::kFig3Codeword,
              core::paper::kFig3CodewordTimeNs);

  // ---- ASCII pulse strips ---------------------------------------------------
  std::cout << "Pulse activity over " << kWindowPs / 1000.0 << " ns ('|' = SFQ pulse"
            << " / DC toggle), 5 GHz clock:\n\n";
  std::vector<std::pair<std::string, std::vector<double>>> strips;
  for (std::size_t i = 0; i < 4; ++i)
    strips.emplace_back("m" + std::to_string(i + 1),
                        simulator.pulses(built.message_inputs[i]));
  strips.emplace_back("clk", simulator.pulses(built.clock_input));
  for (std::size_t j = 0; j < 8; ++j)
    strips.emplace_back("c" + std::to_string(j + 1),
                        simulator.dc_transitions(built.codeword_outputs[j]));
  for (const auto& [label, pulses] : strips)
    std::printf("%-4s %s\n", label.c_str(),
                util::pulse_strip(pulses, 0.0, kWindowPs, 100).c_str());

  // ---- analog CSV -----------------------------------------------------------
  sim::RasterOptions raster;
  raster.t1_ps = kWindowPs;
  raster.noise_sigma_uv = 15.0;  // thermal noise floor on the rendered traces
  std::vector<sim::AnalogTrace> traces;
  for (std::size_t i = 0; i < 4; ++i) {
    sim::RasterOptions in = raster;
    in.pulse_amplitude_uv = 600.0;  // Fig. 3 input axis: 0..600 uV
    in.noise_seed = 100 + i;
    traces.push_back(sim::rasterize_pulses("m" + std::to_string(i + 1),
                                           simulator.pulses(built.message_inputs[i]), in));
  }
  {
    sim::RasterOptions ck = raster;
    ck.pulse_amplitude_uv = 600.0;
    ck.noise_seed = 104;
    traces.push_back(sim::rasterize_pulses("clk", simulator.pulses(built.clock_input), ck));
  }
  for (std::size_t j = 0; j < 8; ++j) {
    sim::RasterOptions out = raster;
    out.noise_seed = 105 + j;
    traces.push_back(sim::rasterize_dc("c" + std::to_string(j + 1),
                                       simulator.dc_transitions(built.codeword_outputs[j]),
                                       400.0, out));  // Fig. 3 output axis: 0..400 uV
  }
  const std::string csv = sim::traces_to_csv(traces);
  std::ofstream("fig3_waveforms.csv") << csv;
  std::printf("\nwrote fig3_waveforms.csv (%zu samples x %zu traces)\n",
              traces.front().samples_uv.size(), traces.size());

  const bool ok = word_at_04ns.to_string() == core::paper::kFig3Codeword;
  std::cout << (ok ? "\nRESULT: Fig. 3 timing and codeword reproduced.\n"
                   : "\nRESULT: MISMATCH vs Fig. 3.\n");
  return ok ? 0 : 1;
}
