// Declarative campaign runner CLI: cartesian scenario sweeps over the full
// link stack (scheme x spread x channel noise x link timing x jitter x ARQ)
// executed by the sharded work-stealing engine, with checkpoint/resume and
// JSON/CSV reports.
//
// Usage: campaign_runner [flags]
//   --chips=N              fabricated chips per cell        (default 100)
//   --messages=N           messages per chip                (default 100)
//   --seed=N               campaign seed                    (default 20250831)
//   --threads=N            worker threads, 0 = hardware     (default 0)
//   --shard=N              chips per work unit              (default 32)
//   --schemes=a,b,..       subset of none,rm13,h74,h84      (default all)
//   --spreads=a,b,..       spread fractions in percent      (default 20)
//   --spread-dist=D        uniform | gaussian               (default uniform)
//   --noise=a,b,..         channel noise sigma in mV        (default 0.04)
//   --attenuation=a,b,..   channel attenuation factors      (default 1)
//   --clock=a,b,..         clock periods in ps              (default 200)
//   --jitter=a,b,..        sim jitter sigma in ps           (default 0.8)
//   --arq=a,b,..           ARQ modes: off or max attempts   (default off)
//   --count-flagged        count flagged frames as errors
//   --checkpoint=PATH      checkpoint file (resume if present)
//   --max-units=N          execute at most N units this run (incremental mode)
//   --json=PATH            write JSON report
//   --csv=PATH             write CSV report
//   --no-artifact-cache    disable the fabrication-artifact cache (A/B runs)
//   --cache-mb=N           artifact-cache byte budget in MiB    (default 256)
//   --cache-stats=PATH     write cache hit/miss counters as JSON (kept out of
//                          the --json report, which stays byte-identical at
//                          any cache/thread/shard setting)
//
// The default single-cell campaign at --chips=1000 is exactly the paper's
// Fig. 5 experiment (and bit-identical to the fig5_ppv_cdf driver). Sweeps
// with several cells per spread (channel/timing/jitter/ARQ axes) fabricate
// each chip once and reuse it across those cells via the artifact cache;
// --no-artifact-cache re-fabricates per cell, which must not change any
// report byte.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) items.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

std::vector<double> parse_doubles(const std::string& csv, const char* flag) {
  std::vector<double> values;
  for (const std::string& item : split_list(csv)) {
    char* end = nullptr;
    values.push_back(std::strtod(item.c_str(), &end));
    if (end == item.c_str() || *end != '\0') {
      std::fprintf(stderr, "campaign_runner: bad value '%s' for %s\n", item.c_str(),
                   flag);
      std::exit(2);
    }
  }
  return values;
}

bool match_flag(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

std::size_t parse_size(const std::string& value, const char* flag) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  // strtoull accepts a sign ("-1" wraps to ULLONG_MAX); require a digit.
  if (value.empty() || value[0] < '0' || value[0] > '9' || *end != '\0') {
    std::fprintf(stderr, "campaign_runner: bad value '%s' for %s\n", value.c_str(),
                 flag);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  engine::CampaignSpec spec;
  spec.chips = 100;

  engine::RunnerOptions options;
  std::string json_path, csv_path, cache_stats_path, scheme_csv;
  ppv::SpreadDistribution dist = ppv::SpreadDistribution::kUniform;
  // Axis defaults are the Fig. 5 setup: +/-20 % spread, 0.04 mV receiver
  // noise (~0 BER alone), 0.8 ps thermal jitter at 4.2 K.
  std::vector<double> spreads_pct{core::paper::kFig5Spread * 100.0};
  std::vector<double> noises{0.04}, attenuations{1.0}, clocks{200.0}, jitters{0.8};
  std::vector<std::string> arq_list{"off"};

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (match_flag(arg, "--chips", value)) {
      spec.chips = parse_size(value, "--chips");
    } else if (match_flag(arg, "--messages", value)) {
      spec.messages_per_chip = parse_size(value, "--messages");
    } else if (match_flag(arg, "--seed", value)) {
      spec.seed = parse_size(value, "--seed");
    } else if (match_flag(arg, "--threads", value)) {
      options.threads = parse_size(value, "--threads");
    } else if (match_flag(arg, "--shard", value)) {
      options.shard_chips = parse_size(value, "--shard");
    } else if (match_flag(arg, "--schemes", value)) {
      scheme_csv = value;
    } else if (match_flag(arg, "--spreads", value)) {
      spreads_pct = parse_doubles(value, "--spreads");
    } else if (match_flag(arg, "--spread-dist", value)) {
      if (value == "uniform") {
        dist = ppv::SpreadDistribution::kUniform;
      } else if (value == "gaussian") {
        dist = ppv::SpreadDistribution::kGaussian;
      } else {
        std::fprintf(stderr, "campaign_runner: --spread-dist must be uniform|gaussian\n");
        return 2;
      }
    } else if (match_flag(arg, "--noise", value)) {
      noises = parse_doubles(value, "--noise");
    } else if (match_flag(arg, "--attenuation", value)) {
      attenuations = parse_doubles(value, "--attenuation");
    } else if (match_flag(arg, "--clock", value)) {
      clocks = parse_doubles(value, "--clock");
    } else if (match_flag(arg, "--jitter", value)) {
      jitters = parse_doubles(value, "--jitter");
    } else if (match_flag(arg, "--arq", value)) {
      arq_list = split_list(value);
    } else if (std::strcmp(arg, "--count-flagged") == 0) {
      spec.count_flagged_as_error = true;
    } else if (match_flag(arg, "--checkpoint", value)) {
      options.checkpoint_path = value;
    } else if (match_flag(arg, "--max-units", value)) {
      options.max_units = parse_size(value, "--max-units");
    } else if (match_flag(arg, "--json", value)) {
      json_path = value;
    } else if (match_flag(arg, "--csv", value)) {
      csv_path = value;
    } else if (std::strcmp(arg, "--no-artifact-cache") == 0) {
      options.artifact_cache_bytes = 0;
    } else if (match_flag(arg, "--cache-mb", value)) {
      options.artifact_cache_bytes = parse_size(value, "--cache-mb") << 20;
    } else if (match_flag(arg, "--cache-stats", value)) {
      cache_stats_path = value;
    } else {
      std::fprintf(stderr, "campaign_runner: unknown flag '%s' (see header comment)\n",
                   arg);
      return 2;
    }
  }

  // ---- assemble the axes ----------------------------------------------------
  spec.spreads.clear();
  for (double pct : spreads_pct) spec.spreads.push_back({pct / 100.0, dist});
  spec.channels.clear();
  for (double noise : noises)
    for (double atten : attenuations) {
      link::ChannelModel ch;
      ch.noise_sigma_mv = noise;
      ch.attenuation = atten;
      spec.channels.push_back(ch);
    }
  spec.timings.clear();
  for (double clock : clocks) {
    engine::LinkTiming timing;
    timing.clock_period_ps = clock;
    timing.input_phase_ps = clock / 2.0;
    spec.timings.push_back(timing);
  }
  spec.faults.clear();
  for (double jitter : jitters) spec.faults.push_back({jitter});
  spec.arq_modes.clear();
  for (const std::string& mode : arq_list) {
    if (mode == "off") {
      spec.arq_modes.push_back({false, 1});
    } else {
      char* end = nullptr;
      const unsigned long long attempts = std::strtoull(mode.c_str(), &end, 10);
      if (end == mode.c_str() || *end != '\0' || attempts == 0) {
        std::fprintf(stderr,
                     "campaign_runner: --arq values must be 'off' or a positive "
                     "attempt count, got '%s'\n",
                     mode.c_str());
        return 2;
      }
      spec.arq_modes.push_back({true, static_cast<std::size_t>(attempts)});
    }
  }

  const auto& library = circuit::coldflux_library();
  const std::vector<core::PaperScheme> paper_schemes = core::make_all_schemes(library);
  std::vector<link::SchemeSpec> schemes;
  const auto wanted = split_list(scheme_csv);
  for (const std::string& w : wanted) {
    if (w != "none" && w != "rm13" && w != "h74" && w != "h84") {
      std::fprintf(stderr,
                   "campaign_runner: unknown scheme '%s' in --schemes "
                   "(valid: none,rm13,h74,h84)\n",
                   w.c_str());
      return 2;
    }
  }
  auto scheme_wanted = [&wanted](core::SchemeId id) {
    if (wanted.empty()) return true;
    const char* tag = id == core::SchemeId::kNoEncoder ? "none"
                      : id == core::SchemeId::kRm13    ? "rm13"
                      : id == core::SchemeId::kHamming74 ? "h74"
                                                         : "h84";
    for (const std::string& w : wanted)
      if (w == tag) return true;
    return false;
  };
  for (std::size_t i = 0; i < paper_schemes.size(); ++i) {
    if (!scheme_wanted(static_cast<core::SchemeId>(i))) continue;
    const core::PaperScheme& s = paper_schemes[i];
    schemes.push_back(
        link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
  }
  if (schemes.empty()) {
    std::fprintf(stderr, "campaign_runner: --schemes matched nothing\n");
    return 2;
  }

  const std::size_t cell_count = spec.spreads.size() * spec.channels.size() *
                                 spec.timings.size() * spec.faults.size() *
                                 spec.arq_modes.size();
  std::printf("campaign: %zu cell(s) x %zu scheme(s), %zu chips x %zu messages\n\n",
              cell_count, schemes.size(), spec.chips, spec.messages_per_chip);

  engine::CampaignResult result;
  try {
    result = engine::run_campaign(spec, schemes, library, options);
  } catch (const ContractViolation& e) {
    // Routine operator mistakes (stale --checkpoint against changed sweep
    // flags, a foreign file at the checkpoint path) get the CLI error path,
    // not an abort.
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  }

  // ---- console summary ------------------------------------------------------
  util::TextTable table({"cell", "scenario", "scheme", "chips", "P(N=0)", "mean N",
                         "mean flagged", "frames/chip", "channel BER"});
  for (const engine::CellResult& cell : result.cells)
    for (const engine::SchemeCellResult& scheme : cell.schemes) {
      const bool ran = scheme.chips_completed > 0;
      table.add_row({std::to_string(cell.cell.index), cell.cell.label, scheme.scheme,
                     std::to_string(scheme.chips_completed),
                     ran ? util::percent(scheme.p_zero, 1) : "-",
                     ran ? util::fixed(scheme.mean_errors, 2) : "-",
                     ran ? util::fixed(scheme.mean_flagged, 2) : "-",
                     ran ? util::fixed(scheme.mean_frames, 1) : "-",
                     ran ? util::scientific(scheme.channel_ber, 2) : "-"});
    }
  std::cout << table.to_string();
  std::printf("\nunits: %zu total, %zu executed, %zu resumed from checkpoint%s\n",
              result.units_total, result.units_executed, result.units_resumed,
              result.complete() ? "" : "  [INCOMPLETE — rerun to continue]");
  const engine::ArtifactCacheStats& cache = result.artifact_cache;
  if (options.artifact_cache_bytes == 0) {
    std::printf("artifact cache: disabled\n");
  } else if (cache.hits + cache.misses == 0) {
    std::printf("artifact cache: idle (no cells share a fabricated population)\n");
  } else {
    std::printf("artifact cache: %llu hits, %llu misses, %llu evictions, "
                "%llu entries (%.1f MiB resident)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.entries),
                static_cast<double>(cache.bytes) / (1 << 20));
  }

  bool ok = true;
  if (!json_path.empty())
    ok &= engine::write_text_file(json_path, engine::campaign_json(spec, result));
  if (!csv_path.empty())
    ok &= engine::write_text_file(csv_path, engine::campaign_csv(result));
  if (!cache_stats_path.empty())
    ok &= engine::write_text_file(cache_stats_path, engine::cache_stats_json(cache));
  return ok ? 0 : 1;
}
