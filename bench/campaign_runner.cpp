// Declarative campaign runner CLI: cartesian scenario sweeps over the full
// link stack (scheme x spread x channel noise x link timing x jitter x ARQ)
// executed by the sharded work-stealing engine, with checkpoint/resume and
// JSON/CSV reports.
//
// Usage: campaign_runner [flags]
//   --chips=N              fabricated chips per cell        (default 100)
//   --messages=N           messages per chip                (default 100)
//   --seed=N               campaign seed                    (default 20250831)
//   --threads=N            worker threads, 0 = hardware     (default 0)
//   --shard=N              chips per work unit              (default 32)
//   --schemes=a,b,..       scheme descriptors from the catalog (default: the
//                          four paper schemes none,rm:1,3,hamming:7,4,
//                          hamming:8,4x — legacy tags rm13,h74,h84 still work)
//   --list-schemes         print the resolved schemes — descriptor, (n,k,d),
//                          rate, decoder, Table-II-style cell counts — and
//                          exit; with no --schemes lists a catalog showcase
//   --spreads=a,b,..       spread fractions in percent      (default 20)
//   --spread-dist=D        uniform | gaussian               (default uniform)
//   --noise=a,b,..         channel noise sigma in mV        (default 0.04)
//   --attenuation=a,b,..   channel attenuation factors      (default 1)
//   --clock=a,b,..         clock periods in ps              (default 200)
//   --jitter=a,b,..        sim jitter sigma in ps           (default 0.8)
//   --arq=a,b,..           ARQ modes: off or max attempts   (default off)
//   --count-flagged        count flagged frames as errors
//   --checkpoint=PATH      checkpoint file (resume if present)
//   --max-units=N          execute at most N units this run (incremental mode)
//   --json=PATH            write JSON report
//   --csv=PATH             write CSV report
//   --no-artifact-cache    disable the fabrication-artifact cache (A/B runs)
//   --cache-mb=N           artifact-cache byte budget in MiB    (default 256)
//   --cache-stats=PATH     write cache hit/miss counters as JSON (kept out of
//                          the --json report, which stays byte-identical at
//                          any cache/thread/shard setting)
//   --retries=N            retries per failed work unit      (default 2, so a
//                          unit gets 3 attempts before quarantine)
//   --fail-fast            abort on the first unit failure (no retries; the
//                          pre-resilience semantics) — exits 1
//   --on-io-error=P        warn | fail: checkpoint/report write failures
//                          either warn-and-continue (default) or exit 4
//   --inject-fault=SPEC    deterministic fault injection, repeatable.
//                          SPEC = site:unit[:attempt]; sites fabricate,
//                          simulate, cache-insert, checkpoint-write,
//                          report-write; unit/attempt take '*' as wildcard
//                          (attempt defaults to 0). See engine/
//                          fault_injection.hpp for the full grammar.
//
// Exit codes: 0 success; 1 report write failed under --on-io-error=warn, or
// --fail-fast abort; 2 usage error / ContractViolation; 3 one or more units
// exhausted their retries and were quarantined (resume from --checkpoint to
// retry exactly those units); 4 I/O failure under --on-io-error=fail.
//
// Scheme descriptors follow core/scheme_catalog.hpp:
//   family[:params][/decoder][@synthesis], e.g. hsiao:8,4  bch:15,7
//   rm:1,3/majority  hamming:7,4@tree  — see --list-schemes for the catalog.
//
// Malformed flag values exit 2 with a caret pointing at the offending
// character. The default single-cell campaign at --chips=1000 is exactly the
// paper's Fig. 5 experiment (and bit-identical to the fig5_ppv_cdf driver).
// Sweeps with several cells per spread (channel/timing/jitter/ARQ axes)
// fabricate each chip once and reuse it across those cells via the artifact
// cache; --no-artifact-cache re-fabricates per cell, which must not change
// any report byte.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

/// Prints "campaign_runner: <message>", the offending argument and a caret
/// under byte `offset` of the argument, then exits 2.
[[noreturn]] void fail_at(const std::string& arg, std::size_t offset,
                          const std::string& message) {
  std::fprintf(stderr, "campaign_runner: %s\n  %s\n  %*s^\n", message.c_str(),
               arg.c_str(), static_cast<int>(offset), "");
  std::exit(2);
}

/// One comma-separated token of a flag value; `offset` is its byte position
/// within the whole argument (for caret messages).
struct Token {
  std::string text;
  std::size_t offset;
};

/// Splits `--flag=a,b,c` into tokens, rejecting an empty value and empty
/// tokens ("a,,b", trailing/leading commas) with a caret.
std::vector<Token> split_tokens(const std::string& arg, std::size_t value_offset,
                                const std::string& value) {
  if (value.empty()) fail_at(arg, value_offset, "empty value");
  std::vector<Token> tokens;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end == start) fail_at(arg, value_offset + start, "empty list entry");
    tokens.push_back(Token{value.substr(start, end - start), value_offset + start});
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return tokens;
}

std::vector<double> parse_doubles(const std::string& arg, std::size_t value_offset,
                                  const std::string& value) {
  std::vector<double> values;
  for (const Token& token : split_tokens(arg, value_offset, value)) {
    char* end = nullptr;
    const double parsed = std::strtod(token.text.c_str(), &end);
    if (end == token.text.c_str() || *end != '\0')
      fail_at(arg, token.offset + static_cast<std::size_t>(end - token.text.c_str()),
              "expected a number");
    values.push_back(parsed);
  }
  return values;
}

std::size_t parse_size(const std::string& arg, std::size_t value_offset,
                       const std::string& value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  // strtoull accepts a sign ("-1" wraps to ULLONG_MAX); require a digit.
  if (value.empty() || value[0] < '0' || value[0] > '9' || *end != '\0')
    fail_at(arg,
            value_offset + (end > value.c_str()
                                ? static_cast<std::size_t>(end - value.c_str())
                                : 0),
            "expected a non-negative integer");
  return static_cast<std::size_t>(parsed);
}

bool match_flag(const char* arg, const char* name, std::string& value,
                std::size_t& value_offset) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  value_offset = len + 1;
  return true;
}

/// Resolves --schemes descriptors against the catalog: parse errors get a
/// caret into the flag argument, resolution errors (unknown family, bad
/// parameters) the catalog's message.
std::vector<core::Scheme> resolve_schemes(const std::string& arg,
                                          const std::vector<std::string>& descriptors,
                                          const std::vector<std::size_t>& offsets,
                                          const circuit::CellLibrary& library) {
  const core::SchemeCatalog& catalog = core::SchemeCatalog::builtin();
  std::vector<core::Scheme> schemes;
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    core::DescriptorParseError error;
    const auto desc = core::parse_scheme_descriptor(descriptors[i], &error);
    if (!desc) {
      if (arg.empty())  // internal default list — never malformed
        fail_at(descriptors[i], error.position, error.message);
      fail_at(arg, offsets[i] + error.position, error.message);
    }
    try {
      schemes.push_back(catalog.resolve(*desc, library));
    } catch (const ContractViolation& e) {
      if (arg.empty()) throw;
      fail_at(arg, offsets[i], e.what());
    }
    for (std::size_t j = 0; j + 1 < schemes.size(); ++j)
      if (schemes[j].name == schemes.back().name)
        fail_at(arg.empty() ? descriptors[i] : arg, arg.empty() ? 0 : offsets[i],
                "duplicate scheme '" + schemes.back().name +
                    "' (reports and checkpoints key on the scheme name)");
  }
  return schemes;
}

/// --list-schemes: the catalog view of the selected schemes — code
/// parameters plus the Table-II-style synthesized circuit inventory.
int list_schemes(const std::vector<core::Scheme>& schemes,
                 const circuit::CellLibrary& library) {
  util::TextTable table({"descriptor", "scheme", "(n,k,d)", "rate", "decoder", "XOR",
                         "DFF", "SPL", "SFQ-DC", "JJs", "depth"});
  for (const core::Scheme& scheme : schemes) {
    std::string nkd = "-", rate = "-", decoder = "-";
    if (scheme.has_code()) {
      nkd = "(" + std::to_string(scheme.code->n()) + "," +
            std::to_string(scheme.code->k()) + "," +
            std::to_string(scheme.code->dmin()) + ")";
      rate = util::fixed(scheme.code->rate(), 3);
    }
    if (scheme.decoder) decoder = scheme.decoder->name();
    const circuit::NetlistStats stats = circuit::compute_stats(
        scheme.encoder->netlist, library, scheme.encoder->clock_input);
    table.add_row({scheme.descriptor, scheme.name, nkd, rate, decoder,
                   std::to_string(stats.count(circuit::CellType::kXor)),
                   std::to_string(stats.count(circuit::CellType::kDff)),
                   std::to_string(stats.count(circuit::CellType::kSplitter)),
                   std::to_string(stats.count(circuit::CellType::kSfqToDc)),
                   std::to_string(stats.jj_count),
                   std::to_string(scheme.encoder->logic_depth)});
  }
  std::cout << table.to_string();
  std::printf("\nfamilies (descriptor grammar family[:params][/decoder][@synthesis]):\n");
  for (const core::SchemeCatalog::FamilyInfo& family :
       core::SchemeCatalog::builtin().families()) {
    std::string decoders;
    for (const std::string& tag : family.decoders) {
      if (!decoders.empty()) decoders += ",";
      decoders += tag;
    }
    std::printf("  %-10s %s — %s%s%s\n", family.family.c_str(),
                family.params_help.c_str(), family.summary.c_str(),
                decoders.empty() ? "" : "; decoders: ",
                decoders.c_str());
  }
  std::printf("  synthesis: @paar (default), @paar-unbounded, @tree, @chain\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  engine::CampaignSpec spec;
  spec.chips = 100;

  engine::RunnerOptions options;
  engine::FaultInjector injector;
  std::string json_path, csv_path, cache_stats_path;
  std::string schemes_arg;              // full --schemes argument, for carets
  std::vector<std::string> scheme_descriptors;
  std::vector<std::size_t> scheme_offsets;
  bool want_list_schemes = false;
  ppv::SpreadDistribution dist = ppv::SpreadDistribution::kUniform;
  // Axis defaults are the Fig. 5 setup: +/-20 % spread, 0.04 mV receiver
  // noise (~0 BER alone), 0.8 ps thermal jitter at 4.2 K.
  std::vector<double> spreads_pct{core::paper::kFig5Spread * 100.0};
  std::vector<double> noises{0.04}, attenuations{1.0}, clocks{200.0}, jitters{0.8};
  std::vector<Token> arq_tokens{{"off", 0}};
  std::string arq_arg = "off";

  for (int i = 1; i < argc; ++i) {
    std::string value;
    std::size_t at = 0;
    const std::string arg = argv[i];
    if (match_flag(argv[i], "--chips", value, at)) {
      spec.chips = parse_size(arg, at, value);
    } else if (match_flag(argv[i], "--messages", value, at)) {
      spec.messages_per_chip = parse_size(arg, at, value);
    } else if (match_flag(argv[i], "--seed", value, at)) {
      spec.seed = parse_size(arg, at, value);
    } else if (match_flag(argv[i], "--threads", value, at)) {
      options.threads = parse_size(arg, at, value);
    } else if (match_flag(argv[i], "--shard", value, at)) {
      options.shard_chips = parse_size(arg, at, value);
    } else if (match_flag(argv[i], "--schemes", value, at)) {
      schemes_arg = arg;
      scheme_descriptors.clear();
      scheme_offsets.clear();
      // Commas separate descriptors AND descriptor parameters; descriptors
      // start with a letter, parameters with a digit, so a digit-leading
      // fragment continues the previous descriptor ("hamming:7,4").
      for (const Token& token : split_tokens(arg, at, value)) {
        if (!scheme_descriptors.empty() && token.text[0] >= '0' &&
            token.text[0] <= '9') {
          scheme_descriptors.back() += ',' + token.text;
          continue;
        }
        scheme_descriptors.push_back(token.text);
        scheme_offsets.push_back(token.offset);
      }
    } else if (std::strcmp(argv[i], "--list-schemes") == 0) {
      want_list_schemes = true;
    } else if (match_flag(argv[i], "--spreads", value, at)) {
      spreads_pct = parse_doubles(arg, at, value);
    } else if (match_flag(argv[i], "--spread-dist", value, at)) {
      if (value == "uniform") {
        dist = ppv::SpreadDistribution::kUniform;
      } else if (value == "gaussian") {
        dist = ppv::SpreadDistribution::kGaussian;
      } else {
        fail_at(arg, at, "expected uniform or gaussian");
      }
    } else if (match_flag(argv[i], "--noise", value, at)) {
      noises = parse_doubles(arg, at, value);
    } else if (match_flag(argv[i], "--attenuation", value, at)) {
      attenuations = parse_doubles(arg, at, value);
    } else if (match_flag(argv[i], "--clock", value, at)) {
      clocks = parse_doubles(arg, at, value);
    } else if (match_flag(argv[i], "--jitter", value, at)) {
      jitters = parse_doubles(arg, at, value);
    } else if (match_flag(argv[i], "--arq", value, at)) {
      arq_arg = arg;
      arq_tokens = split_tokens(arg, at, value);
    } else if (std::strcmp(argv[i], "--count-flagged") == 0) {
      spec.count_flagged_as_error = true;
    } else if (match_flag(argv[i], "--checkpoint", value, at)) {
      options.checkpoint_path = value;
    } else if (match_flag(argv[i], "--max-units", value, at)) {
      options.max_units = parse_size(arg, at, value);
    } else if (match_flag(argv[i], "--json", value, at)) {
      json_path = value;
    } else if (match_flag(argv[i], "--csv", value, at)) {
      csv_path = value;
    } else if (std::strcmp(argv[i], "--no-artifact-cache") == 0) {
      options.artifact_cache_bytes = 0;
    } else if (match_flag(argv[i], "--cache-mb", value, at)) {
      options.artifact_cache_bytes = parse_size(arg, at, value) << 20;
    } else if (match_flag(argv[i], "--cache-stats", value, at)) {
      cache_stats_path = value;
    } else if (match_flag(argv[i], "--retries", value, at)) {
      options.unit_attempts = parse_size(arg, at, value) + 1;
    } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
      options.fail_fast = true;
    } else if (match_flag(argv[i], "--on-io-error", value, at)) {
      if (value == "warn") {
        options.io_error_policy = engine::IoErrorPolicy::kWarn;
      } else if (value == "fail") {
        options.io_error_policy = engine::IoErrorPolicy::kFail;
      } else {
        fail_at(arg, at, "expected warn or fail");
      }
    } else if (match_flag(argv[i], "--inject-fault", value, at)) {
      engine::InjectionParseError error;
      const auto spec = engine::parse_injection_spec(value, &error);
      if (!spec) fail_at(arg, at + error.position, error.message);
      injector.arm(*spec);
    } else {
      std::fprintf(stderr, "campaign_runner: unknown flag '%s' (see header comment)\n",
                   argv[i]);
      return 2;
    }
  }

  // ---- assemble the axes ----------------------------------------------------
  spec.spreads.clear();
  for (double pct : spreads_pct) spec.spreads.push_back({pct / 100.0, dist});
  spec.channels.clear();
  for (double noise : noises)
    for (double atten : attenuations) {
      link::ChannelModel ch;
      ch.noise_sigma_mv = noise;
      ch.attenuation = atten;
      spec.channels.push_back(ch);
    }
  spec.timings.clear();
  for (double clock : clocks) {
    engine::LinkTiming timing;
    timing.clock_period_ps = clock;
    timing.input_phase_ps = clock / 2.0;
    spec.timings.push_back(timing);
  }
  spec.faults.clear();
  for (double jitter : jitters) spec.faults.push_back({jitter});
  spec.arq_modes.clear();
  for (const Token& mode : arq_tokens) {
    if (mode.text == "off") {
      spec.arq_modes.push_back({false, 1});
    } else {
      char* end = nullptr;
      const unsigned long long attempts = std::strtoull(mode.text.c_str(), &end, 10);
      if (mode.text[0] < '0' || mode.text[0] > '9' || *end != '\0' || attempts == 0)
        fail_at(arq_arg, mode.offset, "expected 'off' or a positive attempt count");
      spec.arq_modes.push_back({true, static_cast<std::size_t>(attempts)});
    }
  }

  // ---- resolve schemes from the catalog -------------------------------------
  const auto& library = circuit::coldflux_library();
  if (scheme_descriptors.empty()) {
    scheme_descriptors = core::paper_descriptors();
    if (want_list_schemes) {  // showcase: the paper schemes plus one of each family
      scheme_descriptors.push_back("hsiao:8,4");
      scheme_descriptors.push_back("bch:15,7");
      scheme_descriptors.push_back("code3832");
    }
    scheme_offsets.assign(scheme_descriptors.size(), 0);
  }
  const std::vector<core::Scheme> schemes =
      resolve_schemes(schemes_arg, scheme_descriptors, scheme_offsets, library);

  if (want_list_schemes) return list_schemes(schemes, library);

  const std::size_t cell_count = spec.spreads.size() * spec.channels.size() *
                                 spec.timings.size() * spec.faults.size() *
                                 spec.arq_modes.size();
  std::printf("campaign: %zu cell(s) x %zu scheme(s), %zu chips x %zu messages\n\n",
              cell_count, schemes.size(), spec.chips, spec.messages_per_chip);

  if (injector.armed()) options.fault_injector = &injector;

  engine::CampaignResult result;
  try {
    result = engine::run_campaign(spec, schemes, library, options);
  } catch (const ContractViolation& e) {
    // Routine operator mistakes (stale --checkpoint against changed sweep
    // flags, a foreign file at the checkpoint path) get the CLI error path,
    // not an abort.
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  } catch (const engine::IoError& e) {
    // --on-io-error=fail promoted a checkpoint write failure.
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    // --fail-fast propagates the first unit failure (including injected
    // faults) instead of retrying/quarantining.
    std::fprintf(stderr, "campaign_runner: campaign aborted: %s\n", e.what());
    return 1;
  }

  // ---- console summary ------------------------------------------------------
  util::TextTable table({"cell", "scenario", "scheme", "chips", "P(N=0)", "mean N",
                         "mean flagged", "frames/chip", "channel BER"});
  for (const engine::CellResult& cell : result.cells)
    for (const engine::SchemeCellResult& scheme : cell.schemes) {
      const bool ran = scheme.chips_completed > 0;
      table.add_row({std::to_string(cell.cell.index), cell.cell.label, scheme.scheme,
                     std::to_string(scheme.chips_completed),
                     ran ? util::percent(scheme.p_zero, 1) : "-",
                     ran ? util::fixed(scheme.mean_errors, 2) : "-",
                     ran ? util::fixed(scheme.mean_flagged, 2) : "-",
                     ran ? util::fixed(scheme.mean_frames, 1) : "-",
                     ran ? util::scientific(scheme.channel_ber, 2) : "-"});
    }
  std::cout << table.to_string();
  std::printf("\nunits: %zu total, %zu executed, %zu resumed from checkpoint%s\n",
              result.units_total, result.units_executed, result.units_resumed,
              result.complete() ? "" : "  [INCOMPLETE — rerun to continue]");
  if (!result.failures.empty()) {
    std::printf("quarantined: %zu unit(s) exhausted %zu attempt(s) each; their "
                "chips are excluded above and will be retried on resume\n",
                result.failures.size(), options.unit_attempts);
    for (const engine::UnitFailureInfo& failure : result.failures)
      std::printf("  unit %zu (cell %zu, scheme %zu, chips [%zu,%zu)): %s\n",
                  failure.unit_index, failure.unit.cell, failure.unit.scheme,
                  failure.unit.chip_lo, failure.unit.chip_hi,
                  failure.error.c_str());
  }
  if (injector.armed())
    std::printf("fault injection: %llu injection(s) fired\n",
                static_cast<unsigned long long>(injector.fired()));
  if (result.checkpoint_io_errors > 0)
    std::printf("checkpoint: %llu append(s) failed (those units re-run on resume)\n",
                static_cast<unsigned long long>(result.checkpoint_io_errors));
  const engine::ArtifactCacheStats& cache = result.artifact_cache;
  if (options.artifact_cache_bytes == 0) {
    std::printf("artifact cache: disabled\n");
  } else if (cache.hits + cache.misses == 0) {
    std::printf("artifact cache: idle (no cells share a fabricated population)\n");
  } else {
    std::printf("artifact cache: %llu hits, %llu misses, %llu evictions, "
                "%llu entries (%.1f MiB resident)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.entries),
                static_cast<double>(cache.bytes) / (1 << 20));
  }

  // Reports are written atomically with the same bounded retry as work
  // units; an injected report-write fault on attempt 0 must therefore not
  // change a single byte of the final file. Ordinals follow write order.
  engine::ReportIo report_io;
  report_io.policy = options.io_error_policy;
  report_io.attempts = options.unit_attempts;
  report_io.injector = injector.armed() ? &injector : nullptr;
  bool ok = true;
  try {
    if (!json_path.empty()) {
      report_io.ordinal = 0;
      ok &= engine::write_text_file_atomic(json_path,
                                           engine::campaign_json(spec, result),
                                           report_io);
    }
    if (!csv_path.empty()) {
      report_io.ordinal = 1;
      ok &= engine::write_text_file_atomic(csv_path, engine::campaign_csv(result),
                                           report_io);
    }
    if (!cache_stats_path.empty()) {
      report_io.ordinal = 2;
      ok &= engine::write_text_file_atomic(cache_stats_path,
                                           engine::cache_stats_json(cache),
                                           report_io);
    }
  } catch (const engine::IoError& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 4;
  }
  // Quarantine outranks a failed side-file write: exit 3 tells the operator
  // the statistics themselves are incomplete, not just a report file.
  if (!result.failures.empty()) return 3;
  return ok ? 0 : 1;
}
