// Declarative campaign runner CLI: cartesian scenario sweeps over the full
// link stack (scheme x spread x channel noise x link timing x jitter x ARQ)
// executed by the sharded work-stealing engine, with checkpoint/resume,
// JSON/CSV reports — and a --worker mode that turns this binary into a
// distributed-fabric worker executing spool leases for a
// campaign_coordinator (see README "Distributed campaigns").
//
// Usage: campaign_runner [flags]            run a campaign in this process
//        campaign_runner --worker [flags]   serve a coordinator's spool
//
// Campaign definition flags (shared with campaign_coordinator — identical
// flags define the identical campaign, enforced by the fabric's manifest
// fingerprint): --chips --messages --seed --shard --schemes --list-schemes
// --spreads --spread-dist --noise --attenuation --clock --jitter --arq
// --count-flagged. See --help or bench/campaign_cli.cpp.
//
// Single-process execution flags:
//   --threads=N            worker threads; 0 auto-detects the machine's
//                          hardware concurrency               (default 0)
//   --sim=MODE             event | sliced | auto: exact event simulation for
//                          every chip, bit-sliced 64-chip batches for every
//                          gate-eligible chip, or the per-chip observability
//                          gate (default auto). Speed-only — reports are
//                          byte-identical in every mode (README "Simulation
//                          modes")
//   --checkpoint=PATH      checkpoint file (resume if present)
//   --max-units=N          execute at most N units this run (incremental mode)
//   --json=PATH            write JSON report
//   --csv=PATH             write CSV report
//   --no-artifact-cache    disable the fabrication-artifact cache (A/B runs)
//   --cache-mb=N           artifact-cache byte budget in MiB    (default 256)
//   --cache-stats=PATH     write cache hit/miss counters as JSON (kept out of
//                          the --json report, which stays byte-identical at
//                          any cache/thread/shard setting)
//   --retries=N            retries per failed work unit      (default 2, so a
//                          unit gets 3 attempts before quarantine)
//   --fail-fast            abort on the first unit failure (no retries; the
//                          pre-resilience semantics) — exits 1
//   --on-io-error=P        warn | fail: checkpoint/report write failures
//                          either warn-and-continue (default) or exit 4
//   --inject-fault=SPEC    deterministic fault injection, repeatable.
//                          SPEC = site:unit[:attempt]; sites fabricate,
//                          simulate, cache-insert, checkpoint-write,
//                          report-write, lease-claim, shard-write, merge;
//                          unit/attempt take '*' as wildcard (attempt
//                          defaults to 0). See engine/fault_injection.hpp.
//
// Worker-mode flags (with --worker; campaign + execution flags also apply,
// except --checkpoint/--max-units/--json/--csv/--cache-stats/--fail-fast,
// which are single-process-only):
//   --spool=DIR            spool directory shared with the coordinator
//                          (required)
//   --worker-id=ID         stable worker identity — names the shard, claim
//                          and heartbeat files; a restarted worker with the
//                          same id resumes its shard (default <host>-<pid>)
//   --poll-ms=N            spool poll interval                (default 100)
//   --idle-timeout-ms=N    exit 4 when the spool makes no progress for this
//                          long; 0 waits forever             (default 60000)
//
// Exit codes: 0 success; 1 report write failed under --on-io-error=warn, or
// --fail-fast abort; 2 usage error / ContractViolation (including a worker
// whose flags fingerprint a different campaign than the manifest); 3 one or
// more units exhausted their retries and were quarantined (single-process:
// resume from --checkpoint to retry exactly those units; worker: the units
// are marked in the spool's failed/ directory for the coordinator); 4 I/O
// failure under --on-io-error=fail, or a worker/spool I/O failure or idle
// timeout.
//
// Malformed flag values exit 2 with a caret pointing at the offending
// character. The default single-cell campaign at --chips=1000 is exactly the
// paper's Fig. 5 experiment (and bit-identical to the fig5_ppv_cdf driver).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "campaign_cli.hpp"
#include "fabric/spool.hpp"
#include "fabric/worker.hpp"
#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

void print_help() {
  std::printf(
      "Usage: campaign_runner [flags]           run a campaign in this process\n"
      "       campaign_runner --worker [flags]  serve a coordinator's spool\n\n"
      "%s\n"
      "Single-process execution:\n"
      "  --threads=N            worker threads; 0 auto-detects the machine's\n"
      "                         hardware concurrency            (default 0)\n"
      "  --sim=MODE             event | sliced | auto            (default auto)\n"
      "                         frame evaluation: exact event simulation, bit-\n"
      "                         sliced 64-chip batches, or per-chip gated auto;\n"
      "                         speed-only, reports are byte-identical\n"
      "  --checkpoint=PATH      checkpoint file (resume if present)\n"
      "  --max-units=N          execute at most N units this run\n"
      "  --json=PATH --csv=PATH write reports\n"
      "  --no-artifact-cache / --cache-mb=N / --cache-stats=PATH\n"
      "  --retries=N            retries per failed work unit     (default 2)\n"
      "  --fail-fast            abort on the first unit failure\n"
      "  --on-io-error=P        warn | fail                      (default warn)\n"
      "  --inject-fault=SPEC    site:unit[:attempt], repeatable\n\n"
      "Worker mode (--worker):\n"
      "  --spool=DIR            spool shared with campaign_coordinator (required)\n"
      "  --worker-id=ID         stable identity (shard/claim/heartbeat files)\n"
      "  --poll-ms=N            spool poll interval              (default 100)\n"
      "  --idle-timeout-ms=N    give up after this much spool silence; 0 =\n"
      "                         forever                          (default 60000)\n\n"
      "Exit codes: 0 ok; 1 report write failed (warn policy) or --fail-fast\n"
      "abort; 2 usage/contract error; 3 quarantined units; 4 I/O failure.\n",
      cli::campaign_flags_help());
}

/// Flags that only make sense for a single-process run; rejected under
/// --worker so a misconfigured fleet fails loudly instead of silently writing
/// per-worker reports nobody merges.
struct SingleProcessFlags {
  std::string checkpoint_path, json_path, csv_path, cache_stats_path;
  std::size_t max_units = static_cast<std::size_t>(-1);
  bool max_units_set = false;
  bool fail_fast = false;
};

int run_worker_mode(const cli::CampaignFlags& campaign, const std::string& spool_dir,
                    fabric::WorkerOptions options) {
  if (spool_dir.empty()) {
    std::fprintf(stderr, "campaign_runner: --worker requires --spool=DIR\n");
    return 2;
  }
  const fabric::SpoolPaths spool{spool_dir};
  fabric::WorkerOutcome outcome;
  try {
    outcome = fabric::run_worker(spool, campaign.spec, campaign.cells(),
                                 core::scheme_specs(campaign.schemes()),
                                 circuit::coldflux_library(), options);
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  } catch (const engine::IoError& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 4;
  }
  std::printf("worker %s: %zu lease(s) claimed, %zu unit(s) executed, "
              "%zu quarantined\n",
              options.worker_id.empty() ? fabric::default_worker_id().c_str()
                                        : options.worker_id.c_str(),
              outcome.leases_claimed, outcome.units_executed,
              outcome.units_quarantined);
  return outcome.units_quarantined > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::set_program("campaign_runner");
  cli::CampaignFlags campaign;
  engine::RunnerOptions options;
  engine::FaultInjector injector;
  SingleProcessFlags single;
  bool worker_mode = false;
  std::string spool_dir;
  fabric::WorkerOptions worker;
  worker.idle_timeout = std::chrono::milliseconds(60000);

  for (int i = 1; i < argc; ++i) {
    std::string value;
    std::size_t at = 0;
    const std::string arg = argv[i];
    if (campaign.consume(argv[i])) {
      continue;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_help();
      return 0;
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      worker_mode = true;
    } else if (cli::match_flag(argv[i], "--spool", value, at)) {
      spool_dir = value;
    } else if (cli::match_flag(argv[i], "--worker-id", value, at)) {
      worker.worker_id = value;
    } else if (cli::match_flag(argv[i], "--poll-ms", value, at)) {
      worker.poll_interval =
          std::chrono::milliseconds(cli::parse_size(arg, at, value));
    } else if (cli::match_flag(argv[i], "--idle-timeout-ms", value, at)) {
      worker.idle_timeout =
          std::chrono::milliseconds(cli::parse_size(arg, at, value));
    } else if (cli::match_flag(argv[i], "--threads", value, at)) {
      options.threads = cli::parse_size(arg, at, value);
    } else if (cli::match_flag(argv[i], "--sim", value, at)) {
      if (value == "event") {
        options.sim_mode = engine::SimMode::kEvent;
      } else if (value == "sliced") {
        options.sim_mode = engine::SimMode::kSliced;
      } else if (value == "auto") {
        options.sim_mode = engine::SimMode::kAuto;
      } else {
        cli::fail_at(arg, at, "expected event, sliced or auto");
      }
    } else if (cli::match_flag(argv[i], "--checkpoint", value, at)) {
      single.checkpoint_path = value;
    } else if (cli::match_flag(argv[i], "--max-units", value, at)) {
      single.max_units = cli::parse_size(arg, at, value);
      single.max_units_set = true;
    } else if (cli::match_flag(argv[i], "--json", value, at)) {
      single.json_path = value;
    } else if (cli::match_flag(argv[i], "--csv", value, at)) {
      single.csv_path = value;
    } else if (std::strcmp(argv[i], "--no-artifact-cache") == 0) {
      options.artifact_cache_bytes = 0;
    } else if (cli::match_flag(argv[i], "--cache-mb", value, at)) {
      options.artifact_cache_bytes = cli::parse_size(arg, at, value) << 20;
    } else if (cli::match_flag(argv[i], "--cache-stats", value, at)) {
      single.cache_stats_path = value;
    } else if (cli::match_flag(argv[i], "--retries", value, at)) {
      options.unit_attempts = cli::parse_size(arg, at, value) + 1;
    } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
      single.fail_fast = true;
    } else if (cli::match_flag(argv[i], "--on-io-error", value, at)) {
      if (value == "warn") {
        options.io_error_policy = engine::IoErrorPolicy::kWarn;
      } else if (value == "fail") {
        options.io_error_policy = engine::IoErrorPolicy::kFail;
      } else {
        cli::fail_at(arg, at, "expected warn or fail");
      }
    } else if (cli::match_flag(argv[i], "--inject-fault", value, at)) {
      engine::InjectionParseError error;
      const auto spec = engine::parse_injection_spec(value, &error);
      if (!spec) cli::fail_at(arg, at + error.position, error.message);
      injector.arm(*spec);
    } else {
      std::fprintf(stderr,
                   "campaign_runner: unknown flag '%s' (--help for usage)\n",
                   argv[i]);
      return 2;
    }
  }

  const auto& library = circuit::coldflux_library();
  campaign.finalize(library);
  if (campaign.want_list_schemes) return campaign.list_schemes(library);
  options.shard_chips = campaign.shard_chips;

  if (worker_mode) {
    if (!single.checkpoint_path.empty() || !single.json_path.empty() ||
        !single.csv_path.empty() || !single.cache_stats_path.empty() ||
        single.max_units_set || single.fail_fast) {
      std::fprintf(stderr,
                   "campaign_runner: --checkpoint/--max-units/--json/--csv/"
                   "--cache-stats/--fail-fast are single-process flags, not "
                   "valid with --worker (the coordinator merges and reports)\n");
      return 2;
    }
    worker.threads = options.threads;
    worker.shard_chips = campaign.shard_chips;
    worker.artifact_cache_bytes = options.artifact_cache_bytes;
    worker.unit_attempts = options.unit_attempts;
    worker.sim_mode = options.sim_mode;
    if (injector.armed()) worker.fault_injector = &injector;
    return run_worker_mode(campaign, spool_dir, worker);
  }
  if (!spool_dir.empty() || !worker.worker_id.empty()) {
    std::fprintf(stderr,
                 "campaign_runner: --spool/--worker-id require --worker\n");
    return 2;
  }

  const engine::CampaignSpec& spec = campaign.spec;
  const std::vector<core::Scheme>& schemes = campaign.schemes();
  options.checkpoint_path = single.checkpoint_path;
  options.max_units = single.max_units;
  options.fail_fast = single.fail_fast;

  const std::size_t cell_count = spec.spreads.size() * spec.channels.size() *
                                 spec.timings.size() * spec.faults.size() *
                                 spec.arq_modes.size();
  std::printf("campaign: %zu cell(s) x %zu scheme(s), %zu chips x %zu messages\n\n",
              cell_count, schemes.size(), spec.chips, spec.messages_per_chip);

  if (injector.armed()) options.fault_injector = &injector;

  engine::CampaignResult result;
  try {
    result = engine::run_campaign(spec, schemes, library, options);
  } catch (const ContractViolation& e) {
    // Routine operator mistakes (stale --checkpoint against changed sweep
    // flags, a foreign file at the checkpoint path) get the CLI error path,
    // not an abort.
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  } catch (const engine::IoError& e) {
    // --on-io-error=fail promoted a checkpoint write failure.
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    // --fail-fast propagates the first unit failure (including injected
    // faults) instead of retrying/quarantining.
    std::fprintf(stderr, "campaign_runner: campaign aborted: %s\n", e.what());
    return 1;
  }

  // ---- console summary ------------------------------------------------------
  util::TextTable table({"cell", "scenario", "scheme", "chips", "P(N=0)", "mean N",
                         "mean flagged", "frames/chip", "channel BER"});
  for (const engine::CellResult& cell : result.cells)
    for (const engine::SchemeCellResult& scheme : cell.schemes) {
      const bool ran = scheme.chips_completed > 0;
      table.add_row({std::to_string(cell.cell.index), cell.cell.label, scheme.scheme,
                     std::to_string(scheme.chips_completed),
                     ran ? util::percent(scheme.p_zero, 1) : "-",
                     ran ? util::fixed(scheme.mean_errors, 2) : "-",
                     ran ? util::fixed(scheme.mean_flagged, 2) : "-",
                     ran ? util::fixed(scheme.mean_frames, 1) : "-",
                     ran ? util::scientific(scheme.channel_ber, 2) : "-"});
    }
  std::cout << table.to_string();
  std::printf("\nunits: %zu total, %zu executed, %zu resumed from checkpoint%s\n",
              result.units_total, result.units_executed, result.units_resumed,
              result.complete() ? "" : "  [INCOMPLETE — rerun to continue]");
  if (!result.failures.empty()) {
    std::printf("quarantined: %zu unit(s) exhausted %zu attempt(s) each; their "
                "chips are excluded above and will be retried on resume\n",
                result.failures.size(), options.unit_attempts);
    for (const engine::UnitFailureInfo& failure : result.failures)
      std::printf("  unit %zu (cell %zu, scheme %zu, chips [%zu,%zu)): %s\n",
                  failure.unit_index, failure.unit.cell, failure.unit.scheme,
                  failure.unit.chip_lo, failure.unit.chip_hi,
                  failure.error.c_str());
  }
  if (injector.armed())
    std::printf("fault injection: %llu injection(s) fired\n",
                static_cast<unsigned long long>(injector.fired()));
  if (result.checkpoint_io_errors > 0)
    std::printf("checkpoint: %llu append(s) failed (those units re-run on resume)\n",
                static_cast<unsigned long long>(result.checkpoint_io_errors));
  const engine::ArtifactCacheStats& cache = result.artifact_cache;
  if (options.artifact_cache_bytes == 0) {
    std::printf("artifact cache: disabled\n");
  } else if (cache.hits + cache.misses == 0) {
    std::printf("artifact cache: idle (no cells share a fabricated population)\n");
  } else {
    std::printf("artifact cache: %llu hits, %llu misses, %llu evictions, "
                "%llu entries (%.1f MiB resident)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.entries),
                static_cast<double>(cache.bytes) / (1 << 20));
  }
  // Console-only diagnostics (wall times are machine-dependent; the
  // byte-stable reports never carry them).
  if (result.unit_wall_ns.count() > 0) {
    const util::LatencyHistogram& wall = result.unit_wall_ns;
    std::printf("unit wall time: %llu unit(s), mean %.2f ms, p50 %.2f ms, "
                "p99 %.2f ms, max %.2f ms\n",
                static_cast<unsigned long long>(wall.count()), wall.mean() / 1e6,
                static_cast<double>(wall.quantile(0.50)) / 1e6,
                static_cast<double>(wall.quantile(0.99)) / 1e6,
                static_cast<double>(wall.max()) / 1e6);
  }

  // Reports are written atomically with the same bounded retry as work
  // units; an injected report-write fault on attempt 0 must therefore not
  // change a single byte of the final file. Ordinals follow write order.
  engine::ReportIo report_io;
  report_io.policy = options.io_error_policy;
  report_io.attempts = options.unit_attempts;
  report_io.injector = injector.armed() ? &injector : nullptr;
  bool ok = true;
  try {
    if (!single.json_path.empty()) {
      report_io.ordinal = 0;
      ok &= engine::write_text_file_atomic(single.json_path,
                                           engine::campaign_json(spec, result),
                                           report_io);
    }
    if (!single.csv_path.empty()) {
      report_io.ordinal = 1;
      ok &= engine::write_text_file_atomic(single.csv_path,
                                           engine::campaign_csv(result), report_io);
    }
    if (!single.cache_stats_path.empty()) {
      report_io.ordinal = 2;
      ok &= engine::write_text_file_atomic(single.cache_stats_path,
                                           engine::cache_stats_json(cache),
                                           report_io);
    }
  } catch (const engine::IoError& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 4;
  }
  // Quarantine outranks a failed side-file write: exit 3 tells the operator
  // the statistics themselves are incomplete, not just a report file.
  if (!result.failures.empty()) return 3;
  return ok ? 0 : 1;
}
