#include "serve_cli.hpp"

#include <cstring>

namespace sfqecc::cli {

bool ServeFlags::consume(const char* argv_i) {
  std::string value;
  std::size_t at = 0;
  const std::string arg = argv_i;
  if (match_flag(argv_i, "--schemes", value, at)) {
    schemes_arg_ = arg;
    scheme_descriptors_.clear();
    scheme_offsets_.clear();
    for (const Token& token : split_tokens(arg, at, value)) {
      // Descriptor parameters are comma-separated too ("hamming:7,4"): a
      // token starting with a digit continues the previous descriptor —
      // the same grammar CampaignFlags::consume accepts.
      if (!scheme_descriptors_.empty() && token.text[0] >= '0' &&
          token.text[0] <= '9') {
        scheme_descriptors_.back() += ',' + token.text;
        continue;
      }
      scheme_descriptors_.push_back(token.text);
      scheme_offsets_.push_back(token.offset);
    }
  } else if (match_flag(argv_i, "--chips", value, at)) {
    config_.chips_per_scheme = parse_size(arg, at, value);
    if (config_.chips_per_scheme == 0) fail_at(arg, at, "need at least one chip");
  } else if (match_flag(argv_i, "--spread", value, at)) {
    const std::vector<double> values = parse_doubles(arg, at, value);
    if (values.size() != 1) fail_at(arg, at, "--spread takes one value");
    config_.spread.fraction = values[0] / 100.0;  // percent, like --spreads
  } else if (match_flag(argv_i, "--seed", value, at)) {
    config_.seed = parse_size(arg, at, value);
  } else if (match_flag(argv_i, "--noise", value, at)) {
    const std::vector<double> values = parse_doubles(arg, at, value);
    if (values.size() != 1) fail_at(arg, at, "--noise takes one value");
    config_.link.channel.noise_sigma_mv = values[0];
  } else if (match_flag(argv_i, "--jitter", value, at)) {
    const std::vector<double> values = parse_doubles(arg, at, value);
    if (values.size() != 1) fail_at(arg, at, "--jitter takes one value");
    config_.link.sim.jitter_sigma_ps = values[0];
  } else if (match_flag(argv_i, "--workers", value, at)) {
    config_.workers = parse_size(arg, at, value);
    if (config_.workers == 0) fail_at(arg, at, "need at least one worker");
  } else if (match_flag(argv_i, "--queue", value, at)) {
    config_.queue_capacity = parse_size(arg, at, value);
    if (config_.queue_capacity == 0) fail_at(arg, at, "queue capacity must be >= 1");
  } else if (std::strcmp(argv_i, "--mutex-queue") == 0) {
    config_.lock_free_queue = false;
  } else if (match_flag(argv_i, "--admission", value, at)) {
    if (value == "block")
      config_.admission = serve::AdmissionPolicy::kBlock;
    else if (value == "reject")
      config_.admission = serve::AdmissionPolicy::kReject;
    else
      fail_at(arg, at, "--admission takes block or reject");
  } else if (std::strcmp(argv_i, "--no-coalesce") == 0) {
    config_.coalesce = false;
  } else {
    return false;
  }
  return true;
}

std::vector<core::Scheme> ServeFlags::schemes(
    const circuit::CellLibrary& library) const {
  if (scheme_descriptors_.empty())
    return resolve_schemes("", {"hamming:7,4", "rm:1,3"}, {0, 0}, library);
  return resolve_schemes(schemes_arg_, scheme_descriptors_, scheme_offsets_, library);
}

const char* ServeFlags::help() {
  return
      "  --schemes=A,B          scheme descriptors  (default hamming:7,4,rm:1,3)\n"
      "  --chips=N              resident chips per scheme            (default 4)\n"
      "  --spread=PCT           fabrication spread percent           (default 0)\n"
      "  --seed=N               fabrication + request-substream seed\n"
      "  --noise=MV             channel noise sigma in mV\n"
      "  --jitter=PS            simulator jitter sigma (disables coalescing's gate)\n"
      "  --workers=N            worker threads                       (default 1)\n"
      "  --queue=N              queue capacity (rounded to power of 2, default 1024)\n"
      "  --mutex-queue          mutex+cv queue instead of the lock-free ring\n"
      "  --admission=POLICY     block | reject                   (default block)\n"
      "  --no-coalesce          serve every request on the event path\n";
}

}  // namespace sfqecc::cli
