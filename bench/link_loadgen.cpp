// link_loadgen — open/closed-loop load generator for the link server.
//
// Drives a serve::LinkServer with synthetic traffic and prints the serving
// telemetry. Two loops:
//
//   --mode=closed (default): --clients threads each submit one request and
//   wait for its completion before the next — classic closed-loop, measures
//   latency under a fixed concurrency level. Offered load adapts to service
//   rate, so nothing is ever shed.
//
//   --mode=open: one thread submits on a fixed schedule (--rate requests/s)
//   regardless of completions — open-loop, the regime where back-pressure is
//   visible. Pair with --admission=reject to measure shed load, or the
//   default blocking admission to measure how far latency degrades.
//
// Requests are drawn from the same deterministic trace synthesis as
// link_server --synth, so the workload (not its timing) is reproducible.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve_cli.hpp"
#include "core/paper_encoders.hpp"
#include "engine/report.hpp"
#include "serve/telemetry.hpp"
#include "util/expect.hpp"

namespace sfqecc {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: link_loadgen [flags]\n%s"
               "  --mode=open|closed / --clients=N / --rate=RPS\n"
               "  --requests=N / --trace-seed=N / --telemetry=PATH\n",
               cli::ServeFlags::help());
  return 2;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Closed loop: each client owns a contiguous share of the trace and keeps
// exactly one request in flight.
void run_closed(serve::LinkServer& server,
                const std::vector<serve::TraceRequest>& trace,
                std::size_t clients) {
  std::vector<std::thread> pool;
  pool.reserve(clients);
  const std::size_t share = (trace.size() + clients - 1) / clients;
  for (std::size_t client = 0; client < clients; ++client) {
    const std::size_t begin = client * share;
    const std::size_t end = std::min(trace.size(), begin + share);
    if (begin >= end) break;
    pool.emplace_back([&server, &trace, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        serve::Completion completion;
        const bool admitted = server.submit(
            {trace[i].scheme, trace[i].chip, trace[i].message}, &completion);
        expects(admitted, "closed-loop submit rejected (blocking admission)");
        completion.wait();
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
}

// Open loop: paced submission from one thread; completions are only awaited
// at the end. Under --admission=reject a full queue drops the request (the
// server counts it), which is the measurement.
void run_open(serve::LinkServer& server,
              const std::vector<serve::TraceRequest>& trace, double rate_rps) {
  std::vector<std::unique_ptr<serve::Completion>> inflight;
  inflight.reserve(trace.size());
  const double period_ns = 1e9 / rate_rps;
  const std::uint64_t start = now_ns();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint64_t due =
        start + static_cast<std::uint64_t>(period_ns * static_cast<double>(i));
    while (now_ns() < due) std::this_thread::yield();
    auto completion = std::make_unique<serve::Completion>();
    if (server.submit({trace[i].scheme, trace[i].chip, trace[i].message},
                      completion.get()))
      inflight.push_back(std::move(completion));
  }
  for (const auto& completion : inflight) completion->wait();
}

int run(int argc, char** argv) {
  cli::set_program("link_loadgen");
  cli::ServeFlags serve_flags;
  bool open_loop = false;
  std::size_t clients = 4;
  double rate_rps = 2000.0;
  std::size_t requests = 2000;
  std::size_t trace_seed = 1;
  std::string telemetry_path;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    std::size_t at = 0;
    const std::string arg = argv[i];
    if (serve_flags.consume(argv[i])) {
    } else if (cli::match_flag(argv[i], "--mode", value, at)) {
      if (value == "open")
        open_loop = true;
      else if (value == "closed")
        open_loop = false;
      else
        cli::fail_at(arg, at, "--mode takes open or closed");
    } else if (cli::match_flag(argv[i], "--clients", value, at)) {
      clients = cli::parse_size(arg, at, value);
      if (clients == 0) cli::fail_at(arg, at, "need at least one client");
    } else if (cli::match_flag(argv[i], "--rate", value, at)) {
      const std::vector<double> values = cli::parse_doubles(arg, at, value);
      if (values.size() != 1 || values[0] <= 0.0)
        cli::fail_at(arg, at, "--rate takes one positive value");
      rate_rps = values[0];
    } else if (cli::match_flag(argv[i], "--requests", value, at)) {
      requests = cli::parse_size(arg, at, value);
    } else if (cli::match_flag(argv[i], "--trace-seed", value, at)) {
      trace_seed = cli::parse_size(arg, at, value);
    } else if (cli::match_flag(argv[i], "--telemetry", value, at)) {
      telemetry_path = value;
    } else {
      return usage();
    }
  }

  const circuit::CellLibrary& library = circuit::coldflux_library();
  std::vector<core::Scheme> schemes = serve_flags.schemes(library);
  serve::LinkServerConfig config = serve_flags.config();
  // The loadgen measures the serving window, not construction: start the
  // workers explicitly once the trace is ready.
  config.start_workers = false;

  const std::vector<serve::TraceRequest> trace = serve::synthesize_trace(
      requests, schemes.size(), config.chips_per_scheme, trace_seed);

  serve::LinkServer server(std::move(schemes), library, config);
  server.start();
  if (open_loop)
    run_open(server, trace, rate_rps);
  else
    run_closed(server, trace, clients);
  server.shutdown();

  const serve::ServerTelemetry telemetry = server.telemetry();
  std::uint64_t served = 0;
  for (const serve::SchemeTelemetry& scheme : telemetry.schemes)
    served += scheme.requests();
  if (open_loop)
    std::printf("open loop: %.0f rps offered, ", rate_rps);
  else
    std::printf("closed loop: %zu client(s), ", clients);
  std::printf("%llu/%zu served, %llu rejected, %.3f s wall (%.0f rps)\n",
              static_cast<unsigned long long>(served), trace.size(),
              static_cast<unsigned long long>(telemetry.queue.rejected),
              telemetry.wall_seconds,
              telemetry.wall_seconds > 0.0
                  ? static_cast<double>(served) / telemetry.wall_seconds
                  : 0.0);
  for (const serve::SchemeTelemetry& scheme : telemetry.schemes)
    std::printf(
        "  %-14s %7llu req (%llu sliced, %llu event)  p50 %8llu ns  "
        "p99 %8llu ns  p999 %8llu ns\n",
        scheme.scheme.c_str(), static_cast<unsigned long long>(scheme.requests()),
        static_cast<unsigned long long>(scheme.sliced_requests),
        static_cast<unsigned long long>(scheme.event_requests),
        static_cast<unsigned long long>(scheme.latency_ns.quantile(0.50)),
        static_cast<unsigned long long>(scheme.latency_ns.quantile(0.99)),
        static_cast<unsigned long long>(scheme.latency_ns.quantile(0.999)));
  std::printf(
      "  queue: depth high-water %llu / %llu, %llu blocked submit(s)\n",
      static_cast<unsigned long long>(telemetry.queue.max_depth),
      static_cast<unsigned long long>(telemetry.queue.capacity),
      static_cast<unsigned long long>(telemetry.queue.blocked));
  std::printf("  batches: %llu sliced (width p50 %llu, max %llu)\n",
              static_cast<unsigned long long>(telemetry.batch.batches),
              static_cast<unsigned long long>(telemetry.batch.width.quantile(0.5)),
              static_cast<unsigned long long>(telemetry.batch.width.max()));

  bool ok = true;
  if (!telemetry_path.empty())
    ok &= engine::write_text_file(telemetry_path,
                                  serve::telemetry_json(telemetry));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sfqecc

int main(int argc, char** argv) { return sfqecc::run(argc, argv); }
