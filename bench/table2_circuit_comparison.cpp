// Reproduces Table II of the paper: circuit-level comparison of the three
// error-correction code encoders — standard-cell inventory, JJ count, static
// power and layout area — regenerated from scratch by the synthesis pipeline
// (Paar CSE -> shared-chain path balancing -> SFQ-to-DC insertion -> clock
// attachment -> splitter-tree fan-out legalization).
#include <cstdio>
#include <iostream>
#include <string>

#include "sfqecc.hpp"

using namespace sfqecc;

int main() {
  const auto& library = circuit::coldflux_library();

  std::cout << "=================================================================\n"
               "Table II — circuit-level comparison of ECC encoders\n"
               "(synthesized with: " << library.name() << ")\n"
               "=================================================================\n\n";

  util::TextTable table({"Encoder", "XOR", "DFF", "SPL (data+clk)", "SFQ-DC", "JJs",
                         "Power (uW)", "Area (mm^2)", "depth"});

  struct Row {
    core::SchemeId id;
    core::paper::TableIIRow paper;
  };
  // Paper's row order: RM(1,3), Hamming(7,4), Hamming(8,4).
  const Row rows[] = {
      {core::SchemeId::kRm13, core::paper::kTableII[0]},
      {core::SchemeId::kHamming74, core::paper::kTableII[1]},
      {core::SchemeId::kHamming84, core::paper::kTableII[2]},
  };

  bool all_match = true;
  for (const Row& row : rows) {
    const core::PaperScheme scheme = core::make_scheme(row.id, library);
    const circuit::NetlistStats stats = circuit::compute_stats(
        scheme.encoder->netlist, library, scheme.encoder->clock_input);

    char spl[48];
    std::snprintf(spl, sizeof spl, "%zu (%zu+%zu)",
                  stats.count(circuit::CellType::kSplitter), stats.data_splitters,
                  stats.clock_splitters);
    table.add_row({scheme.name, std::to_string(stats.count(circuit::CellType::kXor)),
                   std::to_string(stats.count(circuit::CellType::kDff)), spl,
                   std::to_string(stats.count(circuit::CellType::kSfqToDc)),
                   std::to_string(stats.jj_count), util::fixed(stats.static_power_uw, 1),
                   util::fixed(stats.area_mm2, 3),
                   std::to_string(scheme.encoder->logic_depth)});
    table.add_row({"  (paper)", std::to_string(row.paper.xor_gates),
                   std::to_string(row.paper.dffs), std::to_string(row.paper.splitters),
                   std::to_string(row.paper.sfq_to_dc), std::to_string(row.paper.jj_count),
                   util::fixed(row.paper.power_uw, 1), util::fixed(row.paper.area_mm2, 3),
                   "2"});
    table.add_rule();

    all_match = all_match &&
                stats.count(circuit::CellType::kXor) == row.paper.xor_gates &&
                stats.count(circuit::CellType::kDff) == row.paper.dffs &&
                stats.count(circuit::CellType::kSplitter) == row.paper.splitters &&
                stats.count(circuit::CellType::kSfqToDc) == row.paper.sfq_to_dc &&
                stats.jj_count == row.paper.jj_count;
  }
  std::cout << table.to_string() << '\n';

  // The Section III remark about Hamming(8,4)'s splitters: 10 in the data
  // path (Fig. 2) plus 13 for the clock network.
  {
    const core::PaperScheme h84 = core::make_scheme(core::SchemeId::kHamming84, library);
    const circuit::NetlistStats stats = circuit::compute_stats(
        h84.encoder->netlist, library, h84.encoder->clock_input);
    std::printf("Hamming(8,4) splitter breakdown: %zu data + %zu clock "
                "(paper: %zu + %zu)\n",
                stats.data_splitters, stats.clock_splitters,
                core::paper::kH84DataSplitters, core::paper::kH84ClockSplitters);
  }

  // The no-encoder reference link for completeness.
  {
    const auto link = circuit::build_no_encoder_link(4, library);
    const circuit::NetlistStats stats =
        circuit::compute_stats(link.netlist, library, link.clock_input);
    std::printf("No-encoder 4-bit link: %s, %zu JJs, %.1f uW, %.3f mm^2\n",
                stats.inventory().c_str(), stats.jj_count, stats.static_power_uw,
                stats.area_mm2);
  }

  std::cout << (all_match
                    ? "\nRESULT: all synthesized cell inventories and JJ counts match "
                      "Table II exactly.\n"
                    : "\nRESULT: MISMATCH against Table II — see rows above.\n");
  return all_match ? 0 : 1;
}
