// link_server — online serving endpoint with deterministic replay.
//
// Stands up a serve::LinkServer over resolved schemes, runs a fixed request
// trace through it (or synthesizes one), and writes the byte-comparable
// outcome record plus the telemetry JSON. The replay contract this binary
// exists to demonstrate: --serial executes the trace one request at a time
// on the exact DataLink event path, and its --outcomes file is cmp-identical
// to a served run of the same trace at ANY --workers count — batching,
// coalescing and queue order change latency, never bytes. CI's serving
// smoke drives exactly that comparison.
//
// Usage:
//   link_server [server flags] [trace flags]
//
// Trace flags:
//   --synth=N              synthesize N requests            (default 256)
//   --trace-seed=N         seed of the synthesized trace    (default 1)
//   --trace=PATH           read the trace from PATH instead
//   --save-trace=PATH      write the trace actually used
//   --serial               serial oracle instead of the server
//   --outcomes=PATH        write the byte-comparable outcome record
//   --telemetry=PATH       write the telemetry JSON (server mode only)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve_cli.hpp"
#include "core/paper_encoders.hpp"
#include "engine/report.hpp"
#include "serve/telemetry.hpp"
#include "util/expect.hpp"

namespace sfqecc {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: link_server [flags]\n%s"
               "  --synth=N / --trace-seed=N / --trace=PATH / --save-trace=PATH\n"
               "  --serial / --outcomes=PATH / --telemetry=PATH\n",
               cli::ServeFlags::help());
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  expects(in.good(), "cannot open trace file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run(int argc, char** argv) {
  cli::set_program("link_server");
  cli::ServeFlags serve_flags;
  std::size_t synth = 256;
  std::size_t trace_seed = 1;
  std::string trace_path, save_trace_path, outcomes_path, telemetry_path;
  bool serial = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    std::size_t at = 0;
    const std::string arg = argv[i];
    if (serve_flags.consume(argv[i])) {
    } else if (cli::match_flag(argv[i], "--synth", value, at)) {
      synth = cli::parse_size(arg, at, value);
    } else if (cli::match_flag(argv[i], "--trace-seed", value, at)) {
      trace_seed = cli::parse_size(arg, at, value);
    } else if (cli::match_flag(argv[i], "--trace", value, at)) {
      trace_path = value;
    } else if (cli::match_flag(argv[i], "--save-trace", value, at)) {
      save_trace_path = value;
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (cli::match_flag(argv[i], "--outcomes", value, at)) {
      outcomes_path = value;
    } else if (cli::match_flag(argv[i], "--telemetry", value, at)) {
      telemetry_path = value;
    } else {
      return usage();
    }
  }

  const circuit::CellLibrary& library = circuit::coldflux_library();
  std::vector<core::Scheme> schemes = serve_flags.schemes(library);
  const serve::LinkServerConfig& config = serve_flags.config();

  const std::vector<serve::TraceRequest> trace =
      trace_path.empty()
          ? serve::synthesize_trace(synth, schemes.size(),
                                    config.chips_per_scheme, trace_seed)
          : serve::parse_trace(read_file(trace_path));
  for (const serve::TraceRequest& request : trace) {
    expects(request.scheme < schemes.size(), "trace scheme out of range");
    expects(request.chip < config.chips_per_scheme, "trace chip out of range");
  }
  bool ok = true;
  if (!save_trace_path.empty())
    ok &= engine::write_text_file(save_trace_path, serve::trace_text(trace));

  std::vector<serve::Response> responses;
  if (serial) {
    responses = serve::run_trace_serial(schemes, library, config, trace);
    std::printf("serial: %zu request(s), %zu scheme(s)\n", trace.size(),
                schemes.size());
  } else {
    serve::LinkServer server(std::move(schemes), library, config);
    responses = serve::run_trace_served(server, trace);
    server.shutdown();
    const serve::ServerTelemetry telemetry = server.telemetry();
    std::printf("served: %zu request(s), %zu worker(s), %.3f s wall\n",
                trace.size(), telemetry.workers, telemetry.wall_seconds);
    for (const serve::SchemeTelemetry& scheme : telemetry.schemes)
      std::printf(
          "  %-14s %7llu req (%llu sliced, %llu event)  p50 %8llu ns  "
          "p99 %8llu ns  p999 %8llu ns\n",
          scheme.scheme.c_str(), static_cast<unsigned long long>(scheme.requests()),
          static_cast<unsigned long long>(scheme.sliced_requests),
          static_cast<unsigned long long>(scheme.event_requests),
          static_cast<unsigned long long>(scheme.latency_ns.quantile(0.50)),
          static_cast<unsigned long long>(scheme.latency_ns.quantile(0.99)),
          static_cast<unsigned long long>(scheme.latency_ns.quantile(0.999)));
    std::printf("  batches: %llu sliced (width p50 %llu, max %llu)\n",
                static_cast<unsigned long long>(telemetry.batch.batches),
                static_cast<unsigned long long>(telemetry.batch.width.quantile(0.5)),
                static_cast<unsigned long long>(telemetry.batch.width.max()));
    if (!telemetry_path.empty())
      ok &= engine::write_text_file(telemetry_path,
                                    serve::telemetry_json(telemetry));
  }
  if (!outcomes_path.empty())
    ok &= engine::write_text_file(outcomes_path,
                                  serve::outcomes_text(trace, responses));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sfqecc

int main(int argc, char** argv) { return sfqecc::run(argc, argv); }
