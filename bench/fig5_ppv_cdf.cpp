// Reproduces Fig. 5 of the paper: the CDF of the number N of erroneous
// messages out of 100 transmissions under process parameter variations.
//
// Protocol (Section IV): 100 random 4-bit messages per chip, 1000 chips with
// independently sampled +/-20 % parameter spreads, four schemes (no encoder,
// RM(1,3), Hamming(7,4), Hamming(8,4)). Every frame runs through the full
// pulse-level circuit simulation -> SFQ-to-DC -> cable -> receiver -> decoder.
//
// Accounting (DESIGN.md §6): a message is erroneous when the decoder accepts
// a wrong message; detected-uncorrectable frames raise the link error flag
// and are reported separately (and also shown under the alternative
// flagged-as-error accounting).
//
// Usage: fig5_ppv_cdf [chips] [messages-per-chip] [spread-%]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "sfqecc.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  link::MonteCarloConfig config;
  config.chips = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                          : core::paper::kFig5Chips;
  config.messages_per_chip = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                                      : core::paper::kFig5MessagesPerChip;
  config.spread.fraction =
      argc > 3 ? std::atof(argv[3]) / 100.0 : core::paper::kFig5Spread;
  config.link.sim.jitter_sigma_ps = 0.8;    // thermal noise at 4.2 K
  config.link.sim.record_pulses = false;    // Monte-Carlo speed
  config.link.channel.noise_sigma_mv = 0.04;  // receiver noise, ~0 BER alone

  const auto& library = circuit::coldflux_library();
  const std::vector<core::PaperScheme> schemes = core::make_all_schemes(library);
  const std::vector<link::SchemeSpec> specs = core::scheme_specs(schemes);

  std::printf(
      "Fig. 5 — CDF of N erroneous messages per %zu transmissions\n"
      "%zu chips, +/-%.0f %% uniform spread, full pulse-level simulation\n\n",
      config.messages_per_chip, config.chips, config.spread.fraction * 100.0);

  const std::vector<link::SchemeOutcome> outcomes =
      link::run_monte_carlo(specs, library, config);

  // ---- headline: P(N = 0) --------------------------------------------------
  util::TextTable head({"Scheme", "P(N=0) measured", "95 % CI", "paper",
                        "mean N", "mean flagged"});
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    const link::SchemeOutcome& o = outcomes[s];
    const std::size_t zeros = o.cdf.count_at(0);
    const util::Interval ci = util::wilson_interval(zeros, config.chips);
    head.add_row({o.name, util::percent(o.p_zero, 1),
                  "[" + util::percent(ci.lo, 1) + ", " + util::percent(ci.hi, 1) + "]",
                  util::percent(core::paper::kFig5PZeros[s].p_zero, 1),
                  util::fixed(o.mean_errors, 2), util::fixed(o.mean_flagged, 2)});
  }
  std::cout << head.to_string() << '\n';

  // ---- CDF table (paper's x-axis grid) --------------------------------------
  util::TextTable cdf_table({"N", outcomes[0].name, outcomes[1].name,
                             outcomes[2].name, outcomes[3].name});
  for (std::size_t n : {0, 1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90}) {
    std::vector<std::string> row{std::to_string(n)};
    for (const link::SchemeOutcome& o : outcomes)
      row.push_back(util::fixed(o.cdf.at(n), 3));
    cdf_table.add_row(row);
  }
  std::cout << cdf_table.to_string() << '\n';

  // ---- CDF plot --------------------------------------------------------------
  std::vector<util::Series> series;
  for (const link::SchemeOutcome& o : outcomes) {
    util::Series s;
    s.label = o.name;
    for (std::size_t n = 0; n <= config.messages_per_chip; n += 2) {
      s.x.push_back(static_cast<double>(n));
      s.y.push_back(o.cdf.at(n));
    }
    series.push_back(std::move(s));
  }
  util::PlotOptions plot;
  plot.width = 78;
  plot.height = 22;
  plot.x_label = "number of erroneous messages, N";
  plot.y_label = "cumulative probability";
  std::cout << util::plot_xy(series, plot);

  // ---- alternative accounting -------------------------------------------------
  std::cout << "\nAlternative accounting (flagged frames counted as erroneous):\n";
  link::MonteCarloConfig alt = config;
  alt.count_flagged_as_error = true;
  const auto alt_outcomes = link::run_monte_carlo(specs, library, alt);
  util::TextTable alt_table({"Scheme", "P(N=0)"});
  for (const link::SchemeOutcome& o : alt_outcomes)
    alt_table.add_row({o.name, util::percent(o.p_zero, 1)});
  std::cout << alt_table.to_string();

  // ---- ordering check ----------------------------------------------------------
  const bool ordering = outcomes[0].p_zero < outcomes[1].p_zero &&
                        outcomes[1].p_zero < outcomes[2].p_zero &&
                        outcomes[2].p_zero < outcomes[3].p_zero;
  std::cout << (ordering ? "\nRESULT: scheme ordering matches the paper "
                           "(no-encoder < RM(1,3) < Hamming(7,4) < Hamming(8,4)).\n"
                         : "\nRESULT: scheme ordering DIFFERS from the paper.\n");
  return 0;
}
