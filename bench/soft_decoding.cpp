// Extension study: soft-decision vs hard-decision decoding of RM(1,3) on the
// cryogenic link's analog channel.
//
// The paper's receiver slices each cable's DC level to a bit before decoding.
// Feeding the analog levels into the FHT instead (Be'ery & Snyders [34], the
// paper's reference for soft RM decoding) buys roughly 2 dB: at receiver
// noise levels where hard decoding starts losing words, soft decoding is
// still clean. Sweep the receiver noise and print both word-error rates.
#include <cstdio>
#include <iostream>

#include "code/soft_decoder.hpp"
#include "sfqecc.hpp"

using namespace sfqecc;

int main() {
  const code::LinearCode rm = code::paper_rm13();
  const code::RmFhtDecoder hard(rm, /*flag_ties=*/false);
  const code::RmSoftDecoder soft(rm);

  constexpr std::size_t kWords = 20000;
  std::cout << "RM(1,3) over the DC link channel (swing 1.0, threshold 0.5): "
            << kWords << " words per point\n\n";

  util::TextTable table({"noise sigma", "channel BER", "hard WER", "soft WER",
                         "soft gain"});
  util::Series hard_series{"hard-decision", {}, {}};
  util::Series soft_series{"soft-decision", {}, {}};

  for (double sigma : {0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    link::ChannelModel channel;
    channel.noise_sigma_mv = sigma;
    util::Rng rng(static_cast<std::uint64_t>(sigma * 1000));

    std::size_t hard_errors = 0, soft_errors = 0;
    for (std::size_t w = 0; w < kWords; ++w) {
      const code::BitVec message = code::BitVec::from_u64(4, rng.below(16));
      const code::BitVec cw = rm.encode(message);
      // Analog receive: level + noise per cable.
      std::vector<double> analog(8);
      code::BitVec sliced(8);
      for (std::size_t j = 0; j < 8; ++j) {
        const double level = (cw.get(j) ? channel.swing_mv : 0.0) +
                             rng.gaussian(0.0, channel.noise_sigma_mv);
        analog[j] = 1.0 - 2.0 * level / channel.swing_mv;  // bipolar
        sliced.set(j, level > channel.threshold_mv);
      }
      if (hard.decode(sliced).message != message) ++hard_errors;
      if (soft.decode(analog).message != message) ++soft_errors;
    }
    const double hard_wer = static_cast<double>(hard_errors) / kWords;
    const double soft_wer = static_cast<double>(soft_errors) / kWords;
    table.add_row({util::fixed(sigma, 2), util::fixed(channel.bit_error_probability(), 4),
                   util::fixed(hard_wer, 4), util::fixed(soft_wer, 4),
                   soft_wer > 0 ? util::fixed(hard_wer / soft_wer, 1) + "x" : ">"});
    hard_series.x.push_back(sigma);
    hard_series.y.push_back(hard_wer);
    soft_series.x.push_back(sigma);
    soft_series.y.push_back(soft_wer);
  }
  std::cout << table.to_string() << '\n';

  util::PlotOptions plot;
  plot.width = 70;
  plot.height = 16;
  plot.x_label = "receiver noise sigma (fraction of swing)";
  plot.y_label = "word error rate";
  std::cout << util::plot_xy({hard_series, soft_series}, plot);
  std::cout << "\nSoft decoding would let the same RM(1,3) encoder tolerate a\n"
               "noisier (longer / thinner, i.e. lower heat-load) cryogenic cable\n"
               "— an extension point beyond the paper's hard-decision receiver.\n";
  return 0;
}
