#include "bench_json_io.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace sfqecc::bench {
namespace {

/// Position just past the '}' closing the record opened at `open`, skipping
/// braces inside (escaped) string values and counting nested objects (a
/// record may hold a "counters" sub-object); std::string::npos when unclosed.
std::size_t record_end(const std::string& text, std::size_t open) {
  bool in_string = false;
  std::size_t depth = 1;
  for (std::size_t i = open + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Pulls the value following `"key":` out of one record's JSON text. This is
/// a schema-specific scanner, not a JSON parser — exactly enough for the
/// files write_bench_json emits.
bool find_value(const std::string& text, const std::string& key, std::string& value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t start = at + needle.size();
  while (start < text.size() && std::isspace(static_cast<unsigned char>(text[start])))
    ++start;
  if (start >= text.size()) return false;
  if (text[start] == '"') {  // string value, with escape handling
    value.clear();
    for (std::size_t i = start + 1; i < text.size(); ++i) {
      if (text[i] == '\\' && i + 1 < text.size()) {
        value.push_back(text[i + 1] == 'n' ? '\n' : text[i + 1]);
        ++i;
        continue;
      }
      if (text[i] == '"') return true;
      value.push_back(text[i]);
    }
    return false;
  }
  std::size_t end = start;
  while (end < text.size() && text[end] != ',' && text[end] != '}' && text[end] != ']')
    ++end;
  value = text.substr(start, end - start);
  return !value.empty();
}

/// Parses the optional "counters" sub-object of one record into `out`.
/// Returns false only on a malformed object (an absent one is fine).
bool parse_counters(const std::string& record_text, std::vector<BenchCounter>& out) {
  const std::size_t key = record_text.find("\"counters\"");
  if (key == std::string::npos) return true;
  const std::size_t open = record_text.find('{', key);
  const std::size_t close = record_text.find('}', open);  // counters never nest
  if (open == std::string::npos || close == std::string::npos) return false;
  std::size_t at = open + 1;
  while (at < close) {
    const std::size_t quote = record_text.find('"', at);
    if (quote == std::string::npos || quote > close) break;
    const std::size_t quote_end = record_text.find('"', quote + 1);
    const std::size_t colon = record_text.find(':', quote_end);
    if (quote_end == std::string::npos || colon == std::string::npos || colon > close)
      return false;
    std::size_t value_end = colon + 1;
    while (value_end < close && record_text[value_end] != ',') ++value_end;
    BenchCounter counter;
    counter.name = record_text.substr(quote + 1, quote_end - quote - 1);
    counter.value =
        std::strtod(record_text.substr(colon + 1, value_end - colon - 1).c_str(),
                    nullptr);
    out.push_back(std::move(counter));
    at = value_end + 1;
  }
  return true;
}

}  // namespace

bool write_bench_json(const std::string& path, const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_json_io: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": 1,\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "    {\"name\": \"" << util::json_escape(r.name) << "\", \"real_time_ns\": "
        << r.real_time_ns << ", \"cpu_time_ns\": " << r.cpu_time_ns
        << ", \"iterations\": " << r.iterations;
    if (!r.counters.empty()) {
      out << ", \"counters\": {";
      for (std::size_t c = 0; c < r.counters.size(); ++c) {
        out << "\"" << util::json_escape(r.counters[c].name)
            << "\": " << r.counters[c].value;
        if (c + 1 < r.counters.size()) out << ", ";
      }
      out << "}";
    }
    out << "}";
    out << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.good();
}

bool load_bench_json(const std::string& path, std::vector<BenchRecord>& records) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_json_io: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string schema;
  if (!find_value(text, "schema", schema) || schema != "1") {
    std::fprintf(stderr, "bench_json_io: %s: missing or unsupported schema\n",
                 path.c_str());
    return false;
  }

  records.clear();
  // Records never nest, so scanning brace pairs after the benchmarks array
  // opens is sufficient.
  std::size_t at = text.find("\"benchmarks\"");
  if (at == std::string::npos) {
    std::fprintf(stderr, "bench_json_io: %s: missing benchmarks array\n", path.c_str());
    return false;
  }
  while (true) {
    const std::size_t open = text.find('{', at);
    if (open == std::string::npos) break;
    const std::size_t close = record_end(text, open);
    if (close == std::string::npos) break;
    const std::string record_text = text.substr(open, close - open);
    at = close;

    BenchRecord record;
    std::string real_ns, cpu_ns, iterations;
    if (!find_value(record_text, "name", record.name) ||
        !find_value(record_text, "real_time_ns", real_ns) ||
        !find_value(record_text, "cpu_time_ns", cpu_ns) ||
        !find_value(record_text, "iterations", iterations)) {
      std::fprintf(stderr, "bench_json_io: %s: malformed record\n", path.c_str());
      return false;
    }
    record.real_time_ns = std::strtod(real_ns.c_str(), nullptr);
    record.cpu_time_ns = std::strtod(cpu_ns.c_str(), nullptr);
    record.iterations = std::strtoll(iterations.c_str(), nullptr, 10);
    if (!parse_counters(record_text, record.counters)) {
      std::fprintf(stderr, "bench_json_io: %s: malformed counters\n", path.c_str());
      return false;
    }
    records.push_back(std::move(record));
  }
  return true;
}

}  // namespace sfqecc::bench
