#include "campaign_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "circuit/netlist_stats.hpp"
#include "core/paper_constants.hpp"
#include "core/paper_encoders.hpp"
#include "ppv/spread.hpp"
#include "util/expect.hpp"
#include "util/table.hpp"

namespace sfqecc::cli {
namespace {

const char* g_program = "campaign_runner";

}  // namespace

std::vector<core::Scheme> resolve_schemes(const std::string& arg,
                                          const std::vector<std::string>& descriptors,
                                          const std::vector<std::size_t>& offsets,
                                          const circuit::CellLibrary& library) {
  const core::SchemeCatalog& catalog = core::SchemeCatalog::builtin();
  std::vector<core::Scheme> schemes;
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    core::DescriptorParseError error;
    const auto desc = core::parse_scheme_descriptor(descriptors[i], &error);
    if (!desc) {
      if (arg.empty())  // internal default list — never malformed
        fail_at(descriptors[i], error.position, error.message);
      fail_at(arg, offsets[i] + error.position, error.message);
    }
    try {
      schemes.push_back(catalog.resolve(*desc, library));
    } catch (const ContractViolation& e) {
      if (arg.empty()) throw;
      fail_at(arg, offsets[i], e.what());
    }
    for (std::size_t j = 0; j + 1 < schemes.size(); ++j)
      if (schemes[j].name == schemes.back().name)
        fail_at(arg.empty() ? descriptors[i] : arg, arg.empty() ? 0 : offsets[i],
                "duplicate scheme '" + schemes.back().name +
                    "' (reports and checkpoints key on the scheme name)");
  }
  return schemes;
}

void set_program(const char* name) { g_program = name; }

void fail_at(const std::string& arg, std::size_t offset, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n  %s\n  %*s^\n", g_program, message.c_str(),
               arg.c_str(), static_cast<int>(offset), "");
  std::exit(2);
}

std::vector<Token> split_tokens(const std::string& arg, std::size_t value_offset,
                                const std::string& value) {
  if (value.empty()) fail_at(arg, value_offset, "empty value");
  std::vector<Token> tokens;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end == start) fail_at(arg, value_offset + start, "empty list entry");
    tokens.push_back(Token{value.substr(start, end - start), value_offset + start});
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return tokens;
}

std::vector<double> parse_doubles(const std::string& arg, std::size_t value_offset,
                                  const std::string& value) {
  std::vector<double> values;
  for (const Token& token : split_tokens(arg, value_offset, value)) {
    char* end = nullptr;
    const double parsed = std::strtod(token.text.c_str(), &end);
    if (end == token.text.c_str() || *end != '\0')
      fail_at(arg, token.offset + static_cast<std::size_t>(end - token.text.c_str()),
              "expected a number");
    values.push_back(parsed);
  }
  return values;
}

std::size_t parse_size(const std::string& arg, std::size_t value_offset,
                       const std::string& value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  // strtoull accepts a sign ("-1" wraps to ULLONG_MAX); require a digit.
  if (value.empty() || value[0] < '0' || value[0] > '9' || *end != '\0')
    fail_at(arg,
            value_offset + (end > value.c_str()
                                ? static_cast<std::size_t>(end - value.c_str())
                                : 0),
            "expected a non-negative integer");
  return static_cast<std::size_t>(parsed);
}

bool match_flag(const char* arg, const char* name, std::string& value,
                std::size_t& value_offset) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  value_offset = len + 1;
  return true;
}

CampaignFlags::CampaignFlags() {
  spec.chips = 100;
  // Axis defaults are the Fig. 5 setup: +/-20 % spread, 0.04 mV receiver
  // noise (~0 BER alone), 0.8 ps thermal jitter at 4.2 K.
  spreads_pct_ = {core::paper::kFig5Spread * 100.0};
  noises_ = {0.04};
  attenuations_ = {1.0};
  clocks_ = {200.0};
  jitters_ = {0.8};
  arq_tokens_ = {{"off", 0}};
  arq_arg_ = "off";
}

bool CampaignFlags::consume(const char* argv_i) {
  std::string value;
  std::size_t at = 0;
  const std::string arg = argv_i;
  if (match_flag(argv_i, "--chips", value, at)) {
    spec.chips = parse_size(arg, at, value);
  } else if (match_flag(argv_i, "--messages", value, at)) {
    spec.messages_per_chip = parse_size(arg, at, value);
  } else if (match_flag(argv_i, "--seed", value, at)) {
    spec.seed = parse_size(arg, at, value);
  } else if (match_flag(argv_i, "--shard", value, at)) {
    shard_chips = parse_size(arg, at, value);
  } else if (match_flag(argv_i, "--schemes", value, at)) {
    schemes_arg_ = arg;
    scheme_descriptors_.clear();
    scheme_offsets_.clear();
    // Commas separate descriptors AND descriptor parameters; descriptors
    // start with a letter, parameters with a digit, so a digit-leading
    // fragment continues the previous descriptor ("hamming:7,4").
    for (const Token& token : split_tokens(arg, at, value)) {
      if (!scheme_descriptors_.empty() && token.text[0] >= '0' &&
          token.text[0] <= '9') {
        scheme_descriptors_.back() += ',' + token.text;
        continue;
      }
      scheme_descriptors_.push_back(token.text);
      scheme_offsets_.push_back(token.offset);
    }
  } else if (std::strcmp(argv_i, "--list-schemes") == 0) {
    want_list_schemes = true;
  } else if (match_flag(argv_i, "--spreads", value, at)) {
    spreads_pct_ = parse_doubles(arg, at, value);
  } else if (match_flag(argv_i, "--spread-dist", value, at)) {
    if (value == "uniform") {
      spread_dist_ = 0;
    } else if (value == "gaussian") {
      spread_dist_ = 1;
    } else {
      fail_at(arg, at, "expected uniform or gaussian");
    }
  } else if (match_flag(argv_i, "--noise", value, at)) {
    noises_ = parse_doubles(arg, at, value);
  } else if (match_flag(argv_i, "--attenuation", value, at)) {
    attenuations_ = parse_doubles(arg, at, value);
  } else if (match_flag(argv_i, "--clock", value, at)) {
    clocks_ = parse_doubles(arg, at, value);
  } else if (match_flag(argv_i, "--jitter", value, at)) {
    jitters_ = parse_doubles(arg, at, value);
  } else if (match_flag(argv_i, "--arq", value, at)) {
    arq_arg_ = arg;
    arq_tokens_ = split_tokens(arg, at, value);
  } else if (std::strcmp(argv_i, "--count-flagged") == 0) {
    spec.count_flagged_as_error = true;
  } else {
    return false;
  }
  return true;
}

void CampaignFlags::finalize(const circuit::CellLibrary& library) {
  const ppv::SpreadDistribution dist = spread_dist_ == 0
                                           ? ppv::SpreadDistribution::kUniform
                                           : ppv::SpreadDistribution::kGaussian;
  spec.spreads.clear();
  for (double pct : spreads_pct_) spec.spreads.push_back({pct / 100.0, dist});
  spec.channels.clear();
  for (double noise : noises_)
    for (double atten : attenuations_) {
      link::ChannelModel ch;
      ch.noise_sigma_mv = noise;
      ch.attenuation = atten;
      spec.channels.push_back(ch);
    }
  spec.timings.clear();
  for (double clock : clocks_) {
    engine::LinkTiming timing;
    timing.clock_period_ps = clock;
    timing.input_phase_ps = clock / 2.0;
    spec.timings.push_back(timing);
  }
  spec.faults.clear();
  for (double jitter : jitters_) spec.faults.push_back({jitter});
  spec.arq_modes.clear();
  for (const Token& mode : arq_tokens_) {
    if (mode.text == "off") {
      spec.arq_modes.push_back({false, 1});
    } else {
      char* end = nullptr;
      const unsigned long long attempts = std::strtoull(mode.text.c_str(), &end, 10);
      if (mode.text[0] < '0' || mode.text[0] > '9' || *end != '\0' || attempts == 0)
        fail_at(arq_arg_, mode.offset, "expected 'off' or a positive attempt count");
      spec.arq_modes.push_back({true, static_cast<std::size_t>(attempts)});
    }
  }

  std::vector<std::string> descriptors = scheme_descriptors_;
  std::vector<std::size_t> offsets = scheme_offsets_;
  if (descriptors.empty()) {
    descriptors = core::paper_descriptors();
    if (want_list_schemes) {  // showcase: the paper schemes plus one of each family
      descriptors.push_back("hsiao:8,4");
      descriptors.push_back("bch:15,7");
      descriptors.push_back("code3832");
    }
    offsets.assign(descriptors.size(), 0);
  }
  schemes_ = resolve_schemes(schemes_arg_, descriptors, offsets, library);
}

int CampaignFlags::list_schemes(const circuit::CellLibrary& library) const {
  util::TextTable table({"descriptor", "scheme", "(n,k,d)", "rate", "decoder", "XOR",
                         "DFF", "SPL", "SFQ-DC", "JJs", "depth"});
  for (const core::Scheme& scheme : schemes_) {
    std::string nkd = "-", rate = "-", decoder = "-";
    if (scheme.has_code()) {
      nkd = "(" + std::to_string(scheme.code->n()) + "," +
            std::to_string(scheme.code->k()) + "," +
            std::to_string(scheme.code->dmin()) + ")";
      rate = util::fixed(scheme.code->rate(), 3);
    }
    if (scheme.decoder) decoder = scheme.decoder->name();
    const circuit::NetlistStats stats = circuit::compute_stats(
        scheme.encoder->netlist, library, scheme.encoder->clock_input);
    table.add_row({scheme.descriptor, scheme.name, nkd, rate, decoder,
                   std::to_string(stats.count(circuit::CellType::kXor)),
                   std::to_string(stats.count(circuit::CellType::kDff)),
                   std::to_string(stats.count(circuit::CellType::kSplitter)),
                   std::to_string(stats.count(circuit::CellType::kSfqToDc)),
                   std::to_string(stats.jj_count),
                   std::to_string(scheme.encoder->logic_depth)});
  }
  std::cout << table.to_string();
  std::printf("\nfamilies (descriptor grammar family[:params][/decoder][@synthesis]):\n");
  for (const core::SchemeCatalog::FamilyInfo& family :
       core::SchemeCatalog::builtin().families()) {
    std::string decoders;
    for (const std::string& tag : family.decoders) {
      if (!decoders.empty()) decoders += ",";
      decoders += tag;
    }
    std::printf("  %-10s %s — %s%s%s\n", family.family.c_str(),
                family.params_help.c_str(), family.summary.c_str(),
                decoders.empty() ? "" : "; decoders: ",
                decoders.c_str());
  }
  std::printf("  synthesis: @paar (default), @paar-unbounded, @tree, @chain\n");
  return 0;
}

const char* campaign_flags_help() {
  return
      "Campaign definition (identical flags => identical campaign; the fabric\n"
      "fingerprint check enforces coordinator/worker agreement):\n"
      "  --chips=N              fabricated chips per cell        (default 100)\n"
      "  --messages=N           messages per chip                (default 100)\n"
      "  --seed=N               campaign seed                    (default 20250831)\n"
      "  --shard=N              chips per work unit              (default 32)\n"
      "  --schemes=a,b,..       scheme descriptors from the catalog (default: the\n"
      "                         four paper schemes none,rm:1,3,hamming:7,4,\n"
      "                         hamming:8,4x)\n"
      "  --list-schemes         print the resolved schemes and exit\n"
      "  --spreads=a,b,..       spread fractions in percent      (default 20)\n"
      "  --spread-dist=D        uniform | gaussian               (default uniform)\n"
      "  --noise=a,b,..         channel noise sigma in mV        (default 0.04)\n"
      "  --attenuation=a,b,..   channel attenuation factors      (default 1)\n"
      "  --clock=a,b,..         clock periods in ps              (default 200)\n"
      "  --jitter=a,b,..        sim jitter sigma in ps           (default 0.8)\n"
      "  --arq=a,b,..           ARQ modes: off or max attempts   (default off)\n"
      "  --count-flagged        count flagged frames as errors\n";
}

}  // namespace sfqecc::cli
