// Distributed-campaign coordinator CLI: expands a campaign, fans it out over
// a spool directory for `campaign_runner --worker` processes, merges their
// checkpoint shards and emits reports byte-identical to a single-machine
// `campaign_runner` run with the same campaign flags (see README
// "Distributed campaigns" and src/fabric/).
//
// Usage: campaign_coordinator --spool=DIR [flags]
//
// The campaign-defining flags (--chips --messages --seed --shard --schemes
// --spreads --spread-dist --noise --attenuation --clock --jitter --arq
// --count-flagged) are the ones campaign_runner takes — and every worker
// must be launched with the SAME campaign flags: there is no config-shipping
// channel, the manifest's campaign fingerprint is what catches disagreement
// (a mismatched worker exits 2 without claiming anything).
//
// Coordinator flags:
//   --spool=DIR            spool directory (created; shards from a previous
//                          interrupted run of the same campaign are
//                          pre-merged and only the missing units re-leased)
//   --lease-units=N        units per lease — distribution granularity, no
//                          effect on any report byte          (default 8)
//   --poll-ms=N            supervision poll interval          (default 100)
//   --lease-timeout-ms=N   a claim whose worker heartbeat is older than this
//                          is presumed dead; its lease is republished for
//                          surviving workers                  (default 2000)
//   --idle-timeout-ms=N    exit 4 when the spool makes no progress for this
//                          long (no workers?); 0 waits forever (default 0)
//   --retries=N            retries for the final shard merge   (default 2)
//   --merged-checkpoint=P  also write the merged units as one canonical
//                          checkpoint file, loadable by campaign_runner
//                          --checkpoint
//   --json=PATH --csv=PATH reports (byte-identical to single-process)
//   --on-io-error=P        warn | fail for report writes      (default warn)
//   --inject-fault=SPEC    deterministic fault injection; the merge site
//                          fires here, worker sites need the workers' own
//                          --inject-fault flags
//
// Exit codes: 0 success; 1 report write failed under warn policy; 2 usage
// error / ContractViolation; 3 one or more units were quarantined by every
// worker that tried them (listed like campaign_runner quarantines; re-run
// the coordinator on the same spool to retry exactly those units); 4 spool
// I/O failure or idle timeout.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "campaign_cli.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/spool.hpp"
#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

void print_help() {
  std::printf(
      "Usage: campaign_coordinator --spool=DIR [flags]\n\n"
      "Fans the campaign out to `campaign_runner --worker --spool=DIR`\n"
      "processes (launch them with the SAME campaign flags) and merges their\n"
      "results byte-identically to a single-process campaign_runner run.\n\n"
      "%s\n"
      "Coordination:\n"
      "  --spool=DIR            spool directory shared with workers (required)\n"
      "  --lease-units=N        units per lease                  (default 8)\n"
      "  --poll-ms=N            supervision poll interval        (default 100)\n"
      "  --lease-timeout-ms=N   heartbeat age presumed dead      (default 2000)\n"
      "  --idle-timeout-ms=N    give up after this much spool silence; 0 =\n"
      "                         forever                          (default 0)\n"
      "  --retries=N            final-merge retries              (default 2)\n"
      "  --merged-checkpoint=P  write the canonical merged checkpoint\n"
      "  --json=PATH --csv=PATH write reports\n"
      "  --on-io-error=P        warn | fail for report writes   (default warn)\n"
      "  --inject-fault=SPEC    site:unit[:attempt], repeatable\n\n"
      "Exit codes: 0 ok; 1 report write failed (warn policy); 2 usage/contract\n"
      "error; 3 quarantined units; 4 spool I/O failure or idle timeout.\n",
      cli::campaign_flags_help());
}

}  // namespace

int main(int argc, char** argv) {
  cli::set_program("campaign_coordinator");
  cli::CampaignFlags campaign;
  fabric::CoordinatorOptions options;
  engine::FaultInjector injector;
  engine::IoErrorPolicy report_policy = engine::IoErrorPolicy::kWarn;
  std::string spool_dir, json_path, csv_path;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    std::size_t at = 0;
    const std::string arg = argv[i];
    if (campaign.consume(argv[i])) {
      continue;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_help();
      return 0;
    } else if (cli::match_flag(argv[i], "--spool", value, at)) {
      spool_dir = value;
    } else if (cli::match_flag(argv[i], "--lease-units", value, at)) {
      options.lease_units = cli::parse_size(arg, at, value);
      if (options.lease_units == 0) cli::fail_at(arg, at, "expected at least 1");
    } else if (cli::match_flag(argv[i], "--poll-ms", value, at)) {
      options.poll_interval =
          std::chrono::milliseconds(cli::parse_size(arg, at, value));
    } else if (cli::match_flag(argv[i], "--lease-timeout-ms", value, at)) {
      options.lease_timeout =
          std::chrono::milliseconds(cli::parse_size(arg, at, value));
    } else if (cli::match_flag(argv[i], "--idle-timeout-ms", value, at)) {
      options.idle_timeout =
          std::chrono::milliseconds(cli::parse_size(arg, at, value));
    } else if (cli::match_flag(argv[i], "--retries", value, at)) {
      options.merge_attempts = cli::parse_size(arg, at, value) + 1;
    } else if (cli::match_flag(argv[i], "--merged-checkpoint", value, at)) {
      options.merged_checkpoint_path = value;
    } else if (cli::match_flag(argv[i], "--json", value, at)) {
      json_path = value;
    } else if (cli::match_flag(argv[i], "--csv", value, at)) {
      csv_path = value;
    } else if (cli::match_flag(argv[i], "--on-io-error", value, at)) {
      if (value == "warn") {
        report_policy = engine::IoErrorPolicy::kWarn;
      } else if (value == "fail") {
        report_policy = engine::IoErrorPolicy::kFail;
      } else {
        cli::fail_at(arg, at, "expected warn or fail");
      }
    } else if (cli::match_flag(argv[i], "--inject-fault", value, at)) {
      engine::InjectionParseError error;
      const auto spec = engine::parse_injection_spec(value, &error);
      if (!spec) cli::fail_at(arg, at + error.position, error.message);
      injector.arm(*spec);
    } else {
      std::fprintf(stderr,
                   "campaign_coordinator: unknown flag '%s' (--help for usage)\n",
                   argv[i]);
      return 2;
    }
  }

  const auto& library = circuit::coldflux_library();
  campaign.finalize(library);
  if (campaign.want_list_schemes) return campaign.list_schemes(library);
  if (spool_dir.empty()) {
    std::fprintf(stderr, "campaign_coordinator: --spool=DIR is required "
                         "(--help for usage)\n");
    return 2;
  }
  options.shard_chips = campaign.shard_chips;
  if (injector.armed()) options.fault_injector = &injector;

  const engine::CampaignSpec& spec = campaign.spec;
  const std::vector<engine::CampaignCell> cells = campaign.cells();
  const std::vector<link::SchemeSpec> schemes =
      core::scheme_specs(campaign.schemes());
  std::printf("campaign: %zu cell(s) x %zu scheme(s), %zu chips x %zu messages "
              "-> spool %s\n\n",
              cells.size(), schemes.size(), spec.chips, spec.messages_per_chip,
              spool_dir.c_str());

  const fabric::SpoolPaths spool{spool_dir};
  fabric::CoordinatorOutcome outcome;
  try {
    outcome = fabric::run_coordinator(spool, spec, cells, schemes, options);
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "campaign_coordinator: %s\n", e.what());
    return 2;
  } catch (const engine::IoError& e) {
    std::fprintf(stderr, "campaign_coordinator: %s\n", e.what());
    return 4;
  }
  const engine::CampaignResult& result = outcome.result;

  // ---- console summary (same shape as campaign_runner's) -------------------
  util::TextTable table({"cell", "scenario", "scheme", "chips", "P(N=0)", "mean N",
                         "mean flagged", "frames/chip", "channel BER"});
  for (const engine::CellResult& cell : result.cells)
    for (const engine::SchemeCellResult& scheme : cell.schemes) {
      const bool ran = scheme.chips_completed > 0;
      table.add_row({std::to_string(cell.cell.index), cell.cell.label, scheme.scheme,
                     std::to_string(scheme.chips_completed),
                     ran ? util::percent(scheme.p_zero, 1) : "-",
                     ran ? util::fixed(scheme.mean_errors, 2) : "-",
                     ran ? util::fixed(scheme.mean_flagged, 2) : "-",
                     ran ? util::fixed(scheme.mean_frames, 1) : "-",
                     ran ? util::scientific(scheme.channel_ber, 2) : "-"});
    }
  std::cout << table.to_string();
  std::printf("\nunits: %zu total, %zu executed by workers, %zu resumed from "
              "existing shards%s\n",
              result.units_total, result.units_executed, result.units_resumed,
              result.complete() ? "" : "  [INCOMPLETE — re-run to continue]");
  std::printf("fabric: %zu lease(s) published, %zu reclaimed from dead workers, "
              "%zu shard(s) merged, %zu worker(s) seen\n",
              outcome.leases_published, outcome.leases_reclaimed,
              outcome.shards_merged, outcome.workers_seen);
  if (!result.failures.empty()) {
    std::printf("quarantined: %zu unit(s) failed on every worker that tried "
                "them; their chips are excluded above and will be retried on "
                "a coordinator re-run\n",
                result.failures.size());
    for (const engine::UnitFailureInfo& failure : result.failures)
      std::printf("  unit %zu (cell %zu, scheme %zu, chips [%zu,%zu)): %s\n",
                  failure.unit_index, failure.unit.cell, failure.unit.scheme,
                  failure.unit.chip_lo, failure.unit.chip_hi,
                  failure.error.c_str());
  }
  if (injector.armed())
    std::printf("fault injection: %llu injection(s) fired\n",
                static_cast<unsigned long long>(injector.fired()));

  // Same atomic report path (and ordinals) as campaign_runner — byte-identical
  // files are the whole point of the fabric.
  engine::ReportIo report_io;
  report_io.policy = report_policy;
  report_io.attempts = options.merge_attempts;
  report_io.injector = injector.armed() ? &injector : nullptr;
  bool ok = true;
  try {
    if (!json_path.empty()) {
      report_io.ordinal = 0;
      ok &= engine::write_text_file_atomic(json_path,
                                           engine::campaign_json(spec, result),
                                           report_io);
    }
    if (!csv_path.empty()) {
      report_io.ordinal = 1;
      ok &= engine::write_text_file_atomic(csv_path, engine::campaign_csv(result),
                                           report_io);
    }
  } catch (const engine::IoError& e) {
    std::fprintf(stderr, "campaign_coordinator: %s\n", e.what());
    return 4;
  }
  if (!result.failures.empty()) return 3;
  return ok ? 0 : 1;
}
