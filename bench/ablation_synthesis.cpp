// Design-choice ablations called out in DESIGN.md:
//
//  1. Synthesis strategy: depth-bounded Paar (the paper's implicit choice)
//     vs. unbounded Paar (fewest XORs), balanced trees (no sharing) and
//     chains — total circuit cost after the full pipeline. Headline: on
//     RM(1,3) unbounded Paar saves one XOR (7 vs 8) but the depth-3 pipeline
//     needs so many balancing DFFs that it costs ~20 % more JJs.
//
//  2. Path balancing: the balanced encoder streams one message per clock;
//     the unbalanced variant (DFFs stripped) mis-encodes consecutive
//     messages — demonstrated at pulse level.
#include <cstdio>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

void synthesis_table(const code::LinearCode& code) {
  const auto& library = circuit::coldflux_library();
  std::printf("%s:\n", code.name().c_str());
  util::TextTable table({"algorithm", "XOR", "depth", "DFF", "SPL", "JJs", "Power (uW)"});
  const std::pair<const char*, circuit::SynthesisAlgorithm> algos[] = {
      {"paar (depth-bounded)", circuit::SynthesisAlgorithm::kPaar},
      {"paar (unbounded)", circuit::SynthesisAlgorithm::kPaarUnbounded},
      {"tree (no sharing)", circuit::SynthesisAlgorithm::kTree},
      {"chain (no sharing)", circuit::SynthesisAlgorithm::kChain},
  };
  for (const auto& [name, algo] : algos) {
    circuit::EncoderBuildOptions options;
    options.algorithm = algo;
    const circuit::BuiltEncoder built = circuit::build_encoder(code, library, options);
    const circuit::NetlistStats stats =
        circuit::compute_stats(built.netlist, library, built.clock_input);
    table.add_row({name, std::to_string(stats.count(circuit::CellType::kXor)),
                   std::to_string(built.logic_depth),
                   std::to_string(stats.count(circuit::CellType::kDff)),
                   std::to_string(stats.count(circuit::CellType::kSplitter)),
                   std::to_string(stats.jj_count),
                   util::fixed(stats.static_power_uw, 1)});
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main() {
  std::cout << "==========================================================\n"
               "Ablation 1 — synthesis strategy vs total circuit cost\n"
               "==========================================================\n\n";
  synthesis_table(code::paper_hamming74());
  synthesis_table(code::paper_hamming84());
  synthesis_table(code::paper_rm13());
  synthesis_table(code::code3832());

  std::cout << "==========================================================\n"
               "Ablation 2 — path balancing enables streaming operation\n"
               "==========================================================\n\n";
  const auto& library = circuit::coldflux_library();
  const code::LinearCode h84 = code::paper_hamming84();
  const double period = 200.0;

  for (bool balanced : {true, false}) {
    circuit::EncoderBuildOptions options;
    options.balance_paths = balanced;
    const circuit::BuiltEncoder built = circuit::build_encoder(h84, library, options);

    sim::SimConfig config;
    config.record_pulses = false;
    sim::EventSimulator simulator(built.netlist, library, config);

    // Stream 8 messages, one per clock window.
    std::vector<code::BitVec> messages;
    for (std::uint64_t m = 0; m < 8; ++m)
      messages.push_back(code::BitVec::from_u64(4, (m * 5 + 3) % 16));
    for (std::size_t i = 0; i < messages.size(); ++i) {
      const double t = 100.0 + period * static_cast<double>(i);
      for (std::size_t b = 0; b < 4; ++b)
        if (messages[i].get(b)) simulator.inject_pulse(built.message_inputs[b], t);
    }
    const std::size_t cycles = messages.size() + 2;
    simulator.inject_clock(built.clock_input, period, period,
                           period * static_cast<double>(cycles) + 0.5);

    std::vector<code::BitVec> samples;
    for (std::size_t c = 0; c <= cycles; ++c) {
      simulator.run_until(period * static_cast<double>(c) + 80.0);
      code::BitVec levels(8);
      for (std::size_t j = 0; j < 8; ++j)
        levels.set(j, simulator.dc_level(built.codeword_outputs[j]));
      samples.push_back(levels);
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < messages.size(); ++i)
      if ((samples[i + 2] ^ samples[i + 1]) == h84.encode(messages[i])) ++correct;
    std::printf("%-10s encoder: %zu DFFs, %zu/%zu streamed codewords correct\n",
                balanced ? "balanced" : "unbalanced",
                built.netlist.count_cells(circuit::CellType::kDff), correct,
                messages.size());
  }
  std::cout << "\nThe 8 balancing DFFs of Table II are what make the encoder a\n"
               "pipeline; without them consecutive messages mix between stages.\n";
  return 0;
}
