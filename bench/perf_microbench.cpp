// google-benchmark microbenchmarks: throughput of the hot paths used by the
// Monte-Carlo harness (encode, decode, synthesis, pulse simulation, chip
// sampling, full frames).
//
// Besides the normal console output, results are normalized into
// BENCH_fig5.json (override with --bench_json_out=PATH) so PRs can diff the
// perf trajectory; see bench/bench_to_json.hpp for the schema.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>

#include "bench_to_json.hpp"
#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

const circuit::CellLibrary& lib() { return circuit::coldflux_library(); }

void BM_EncodeH84(benchmark::State& state) {
  const code::LinearCode c = code::paper_hamming84();
  util::Rng rng(1);
  for (auto _ : state) {
    const code::BitVec m = code::BitVec::from_u64(4, rng.below(16));
    benchmark::DoNotOptimize(c.encode(m));
  }
}
BENCHMARK(BM_EncodeH84);

void BM_DecodeSyndromeH74(benchmark::State& state) {
  const code::LinearCode c = code::paper_hamming74();
  const code::SyndromeDecoder dec(c);
  util::Rng rng(2);
  for (auto _ : state) {
    code::BitVec rx = c.encode(code::BitVec::from_u64(4, rng.below(16)));
    rx.flip(rng.below(7));
    benchmark::DoNotOptimize(dec.decode(rx));
  }
}
BENCHMARK(BM_DecodeSyndromeH74);

void BM_DecodeSecDedH84(benchmark::State& state) {
  const code::LinearCode ext = code::paper_hamming84();
  const code::LinearCode base = code::paper_hamming74();
  const code::ExtendedHammingDecoder dec(ext, base);
  util::Rng rng(3);
  for (auto _ : state) {
    code::BitVec rx = ext.encode(code::BitVec::from_u64(4, rng.below(16)));
    rx.flip(rng.below(8));
    benchmark::DoNotOptimize(dec.decode(rx));
  }
}
BENCHMARK(BM_DecodeSecDedH84);

void BM_DecodeFhtRm13(benchmark::State& state) {
  const code::LinearCode rm = code::paper_rm13();
  const code::RmFhtDecoder dec(rm, false);
  util::Rng rng(4);
  for (auto _ : state) {
    code::BitVec rx = rm.encode(code::BitVec::from_u64(4, rng.below(16)));
    rx.flip(rng.below(8));
    benchmark::DoNotOptimize(dec.decode(rx));
  }
}
BENCHMARK(BM_DecodeFhtRm13);

void BM_DecodeFhtRm1m(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const code::LinearCode rm = code::reed_muller(1, m);
  const code::RmFhtDecoder dec(rm);
  util::Rng rng(5);
  for (auto _ : state) {
    code::BitVec rx = rm.encode(code::BitVec::from_u64(m + 1, rng.below(1ULL << (m + 1))));
    rx.flip(rng.below(rm.n()));
    benchmark::DoNotOptimize(dec.decode(rx));
  }
}
BENCHMARK(BM_DecodeFhtRm1m)->Arg(3)->Arg(5)->Arg(8)->Arg(10);

void BM_DecodeBch157(benchmark::State& state) {
  const code::BchCode bch(4, 5);
  util::Rng rng(6);
  for (auto _ : state) {
    code::BitVec rx = bch.encode(code::BitVec::from_u64(7, rng.below(128)));
    rx.flip(rng.below(15));
    rx.flip(rng.below(15));
    benchmark::DoNotOptimize(bch.decode(rx));
  }
}
BENCHMARK(BM_DecodeBch157);

void BM_SynthesizePaarH84(benchmark::State& state) {
  const code::Gf2Matrix g = code::paper_hamming84().generator();
  for (auto _ : state) benchmark::DoNotOptimize(circuit::synthesize_paar(g));
}
BENCHMARK(BM_SynthesizePaarH84);

void BM_SynthesizePaar3832(benchmark::State& state) {
  const code::Gf2Matrix g = code::code3832().generator();
  for (auto _ : state) benchmark::DoNotOptimize(circuit::synthesize_paar(g));
}
BENCHMARK(BM_SynthesizePaar3832);

void BM_BuildEncoderH84(benchmark::State& state) {
  const code::LinearCode c = code::paper_hamming84();
  for (auto _ : state) benchmark::DoNotOptimize(circuit::build_encoder(c, lib()));
}
BENCHMARK(BM_BuildEncoderH84);

void BM_PulseSimFrameH84(benchmark::State& state) {
  const code::LinearCode c = code::paper_hamming84();
  const circuit::BuiltEncoder built = circuit::build_encoder(c, lib());
  sim::SimConfig config;
  config.record_pulses = false;
  sim::EventSimulator simulator(built.netlist, lib(), config);
  util::Rng rng(7);
  for (auto _ : state) {
    simulator.reset();
    const code::BitVec m = code::BitVec::from_u64(4, rng.below(16));
    for (std::size_t b = 0; b < 4; ++b)
      if (m.get(b)) simulator.inject_pulse(built.message_inputs[b], 100.0);
    simulator.inject_clock(built.clock_input, 200.0, 200.0, 400.5);
    simulator.run_until(460.0);
    benchmark::DoNotOptimize(simulator.dc_level(built.codeword_outputs[0]));
  }
}
BENCHMARK(BM_PulseSimFrameH84);

void BM_ChipSample(benchmark::State& state) {
  const circuit::BuiltEncoder built =
      circuit::build_encoder(code::paper_rm13(), lib());
  ppv::SpreadSpec spread;
  ppv::ChipSample chip;
  util::Rng rng(8);
  for (auto _ : state) {
    ppv::sample_chip_into(chip, built.netlist, lib(), spread, rng);
    benchmark::DoNotOptimize(chip);
  }
}
BENCHMARK(BM_ChipSample);

void BM_FullLinkFrame(benchmark::State& state) {
  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, lib());
  link::DataLinkConfig config;
  config.sim.record_pulses = false;
  link::DataLink dlink(*scheme.encoder, lib(), scheme.code.get(), scheme.decoder.get(),
                       config);
  util::Rng rng(9);
  for (auto _ : state) {
    const code::BitVec m = code::BitVec::from_u64(4, rng.below(16));
    benchmark::DoNotOptimize(dlink.send(m, rng));
  }
}
BENCHMARK(BM_FullLinkFrame);

namespace campaign_cell {

// A screening-style two-cell sweep (ARQ off/on, shared spread, few messages
// per chip) where fabrication is a large share of the work — the workload
// class the artifact cache targets. Cached and uncached variants measure the
// same engine entry point, so their ratio is the cache win.
engine::CampaignSpec spec() {
  engine::CampaignSpec s;
  s.chips = 16;
  s.messages_per_chip = 4;
  s.seed = 20250831;
  s.arq_modes = {{false, 1}, {true, 4}};
  return s;
}

void run(benchmark::State& state, std::size_t cache_bytes) {
  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, lib());
  const std::vector<link::SchemeSpec> schemes{
      {scheme.name, scheme.encoder.get(), scheme.code.get(), scheme.decoder.get()}};
  const engine::CampaignSpec s = spec();
  engine::RunnerOptions options;
  options.threads = 1;
  options.artifact_cache_bytes = cache_bytes;
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::run_campaign(s, schemes, lib(), options));
}

}  // namespace campaign_cell

void BM_CampaignCellCached(benchmark::State& state) {
  campaign_cell::run(state, engine::RunnerOptions{}.artifact_cache_bytes);
}
BENCHMARK(BM_CampaignCellCached);

void BM_CampaignCellUncached(benchmark::State& state) { campaign_cell::run(state, 0); }
BENCHMARK(BM_CampaignCellUncached);

void BM_CampaignFramesVsThreads(benchmark::State& state) {
  // Scheduler scaling: the campaign_cell sweep at 1/2/4 worker threads,
  // reported as link frames per second so the threads axis reads directly as
  // throughput (the distributed fabric stacks machines on top of this same
  // per-process scaling). On a single-core runner the 2/4-thread rates
  // simply flatten — the point of the record is catching regressions in the
  // work-stealing scheduler's overhead, not proving linear speedup.
  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, lib());
  const std::vector<link::SchemeSpec> schemes{
      {scheme.name, scheme.encoder.get(), scheme.code.get(), scheme.decoder.get()}};
  const engine::CampaignSpec s = campaign_cell::spec();
  engine::RunnerOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.shard_chips = 4;  // enough units to feed every thread
  std::size_t frames = 0;
  for (auto _ : state) {
    const engine::CampaignResult result = engine::run_campaign(s, schemes, lib(), options);
    benchmark::DoNotOptimize(result);
    for (const engine::CellResult& cell : result.cells)
      for (const engine::SchemeCellResult& sc : cell.schemes)
        frames += static_cast<std::size_t>(sc.mean_frames * sc.chips_completed);
  }
  state.counters["frames_per_s"] =
      benchmark::Counter(static_cast<double>(frames), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignFramesVsThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MonteCarloChip(benchmark::State& state) {
  // One full Fig. 5 chip: PPV sample + 100 messages through the H84 link.
  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, lib());
  link::DataLinkConfig config;
  config.sim.record_pulses = false;
  link::DataLink dlink(*scheme.encoder, lib(), scheme.code.get(), scheme.decoder.get(),
                       config);
  ppv::SpreadSpec spread;
  ppv::ChipSample chip;
  util::Rng rng(10);
  for (auto _ : state) {
    ppv::sample_chip_into(chip, scheme.encoder->netlist, lib(), spread, rng);
    dlink.install_chip(chip);
    std::size_t errors = 0;
    for (int m = 0; m < 100; ++m) {
      const code::BitVec msg = code::BitVec::from_u64(4, rng.below(16));
      if (dlink.send(msg, rng).message_error) ++errors;
    }
    benchmark::DoNotOptimize(errors);
  }
}
BENCHMARK(BM_MonteCarloChip);

void BM_BitslicedFrameH84(benchmark::State& state) {
  // Lane-parallel counterpart of BM_PulseSimFrameH84: identical frame timing
  // and netlist, but each iteration evaluates 64 frames at once (one per lane
  // of the bit-sliced simulator). The frames_per_s counter makes the event
  // and sliced records directly comparable as throughput.
  const code::LinearCode c = code::paper_hamming84();
  const circuit::BuiltEncoder built = circuit::build_encoder(c, lib());
  sim::SlicedSimulator simulator(built.netlist, lib());
  util::Rng rng(7);
  std::uint64_t msgs[sim::SlicedSimulator::kMaxLanes];
  for (auto _ : state) {
    simulator.reset();
    for (std::uint64_t& m : msgs) m = rng.below(16);
    for (std::size_t b = 0; b < 4; ++b) {
      sim::LaneMask mask = 0;
      for (std::size_t l = 0; l < sim::SlicedSimulator::kMaxLanes; ++l)
        if (msgs[l] >> b & 1) mask |= sim::LaneMask{1} << l;
      if (mask) simulator.inject_pulse(built.message_inputs[b], 100.0, mask);
    }
    simulator.inject_clock(built.clock_input, 200.0, 200.0, 400.5, ~sim::LaneMask{0});
    simulator.run_until(460.0);
    benchmark::DoNotOptimize(simulator.dc_levels(built.codeword_outputs[0]));
  }
  state.counters["frames_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * sim::SlicedSimulator::kMaxLanes,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BitslicedFrameH84);

namespace mc_chip64 {

// Identical 64-chip Fig. 5 workload measured through both stage-2 paths:
// spread fraction 0 fabricates every chip fully healthy, i.e. gate-eligible
// for slicing, so Event64 and Sliced transmit byte-identical frames and
// their throughput ratio is a pure measure of the bit-sliced evaluation win.
// main() attaches that ratio to the sliced record as `event_vs_sliced`.
constexpr std::size_t kChips = 64;
constexpr std::size_t kMessages = 100;

engine::ChipTask task(const link::SchemeSpec& spec) {
  engine::ChipTask t;
  t.scheme = &spec;
  t.library = &lib();
  t.spread.fraction = 0.0;  // all-healthy: the batchable workload class
  t.seed = 20250831;
  t.chips = kChips;
  t.messages = kMessages;
  return t;
}

}  // namespace mc_chip64

void BM_MonteCarloChipEvent64(benchmark::State& state) {
  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, lib());
  const link::SchemeSpec spec{scheme.name, scheme.encoder.get(), scheme.code.get(),
                              scheme.decoder.get()};
  link::DataLinkConfig config;
  config.sim.record_pulses = false;
  link::DataLink dlink(*scheme.encoder, lib(), scheme.code.get(), scheme.decoder.get(),
                       config);
  engine::ChipTask task = mc_chip64::task(spec);
  ppv::ChipSample chip;
  std::size_t errors = 0;
  for (auto _ : state) {
    for (std::size_t c = 0; c < mc_chip64::kChips; ++c) {
      task.chip = c;
      engine::fabricate_chip(task, chip);
      errors += engine::simulate_chip(dlink, task, chip).errors;
    }
  }
  benchmark::DoNotOptimize(errors);
  state.counters["frames_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * mc_chip64::kChips * mc_chip64::kMessages,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MonteCarloChipEvent64);

void BM_MonteCarloChipSliced(benchmark::State& state) {
  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, lib());
  const link::SchemeSpec spec{scheme.name, scheme.encoder.get(), scheme.code.get(),
                              scheme.decoder.get()};
  link::DataLinkConfig config;
  config.sim.record_pulses = false;
  link::SlicedLink slink(*scheme.encoder, lib(), scheme.code.get(), scheme.decoder.get(),
                         config);
  engine::ChipTask task = mc_chip64::task(spec);
  ppv::ChipSample chip;
  std::size_t chips[mc_chip64::kChips];
  for (std::size_t c = 0; c < mc_chip64::kChips; ++c) chips[c] = c;
  engine::ChipCounts counts[mc_chip64::kChips];
  std::size_t errors = 0;
  for (auto _ : state) {
    // Same fabrication work as Event64 (the sliced path in the executor also
    // fabricates every chip before batching), so the records differ only in
    // how stage 2 is evaluated.
    for (std::size_t c = 0; c < mc_chip64::kChips; ++c) {
      task.chip = c;
      engine::fabricate_chip(task, chip);
    }
    engine::simulate_chip_batch(slink, task, chips, mc_chip64::kChips, counts);
    for (const engine::ChipCounts& cc : counts) errors += cc.errors;
  }
  benchmark::DoNotOptimize(errors);
  state.counters["frames_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * mc_chip64::kChips * mc_chip64::kMessages,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MonteCarloChipSliced);

void BM_MpmcRingThroughput(benchmark::State& state, bool lock_free) {
  // Push+pop round-trips through the server's queue under real contention
  // (every benchmark thread is both producer and consumer). The ring and the
  // mutex+cv fallback run the identical loop, so their two records keep the
  // lock-free advantage a measured number.
  static std::unique_ptr<serve::ServeQueue<std::uint64_t>> queue;
  if (state.thread_index() == 0)
    queue = std::make_unique<serve::ServeQueue<std::uint64_t>>(1024, lock_free);
  for (auto _ : state) {
    while (!queue->try_push(static_cast<std::uint64_t>(state.thread_index()))) {
    }
    std::uint64_t out;
    while (!queue->try_pop(out)) {
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) queue.reset();
}
BENCHMARK_CAPTURE(BM_MpmcRingThroughput, ring, true)->Threads(4)->UseRealTime();
BENCHMARK_CAPTURE(BM_MpmcRingThroughput, mutex, false)->Threads(4)->UseRealTime();

namespace served {

std::vector<core::Scheme> schemes() {
  std::vector<core::Scheme> out;
  out.push_back(core::SchemeCatalog::builtin().resolve("hamming:7,4", lib()));
  return out;
}

}  // namespace served

void BM_ServedFrameLatency(benchmark::State& state) {
  // One request's full round trip through the online server: submit, queue,
  // worker wake-up, frame, completion release. BM_DirectFrameLatency is the
  // same frame without the serving machinery; the gap between the two
  // records is the serving overhead per request.
  serve::LinkServerConfig config;
  serve::LinkServer server(served::schemes(), lib(), config);
  util::Rng rng(11);
  for (auto _ : state) {
    serve::Completion completion;
    const bool admitted = server.submit({0, 0, rng.next_u64()}, &completion);
    completion.wait();
    benchmark::DoNotOptimize(admitted);
  }
  server.shutdown();
}
BENCHMARK(BM_ServedFrameLatency)->UseRealTime();

void BM_DirectFrameLatency(benchmark::State& state) {
  // Direct-call baseline of BM_ServedFrameLatency: identical scheme, link
  // config and per-request substream discipline, no queue or worker between
  // the caller and the frame.
  const std::vector<core::Scheme> schemes = served::schemes();
  const link::SchemeSpec spec = schemes[0].spec();
  const serve::LinkServerConfig config;
  link::DataLink dlink(*spec.encoder, lib(), spec.reference, spec.decoder,
                       config.link);
  util::Rng rng(11);
  std::uint64_t id = 0;
  for (auto _ : state) {
    dlink.reseed_noise(util::substream_seed(config.seed ^ serve::kServeNoiseDomain, id));
    util::Rng chan(config.seed ^ serve::kServeChannelDomain, id);
    const code::BitVec m = code::BitVec::from_u64(4, rng.next_u64() & 0xF);
    benchmark::DoNotOptimize(dlink.send(m, chan));
    ++id;
  }
}
BENCHMARK(BM_DirectFrameLatency);

void served_trace(benchmark::State& state, bool coalesce) {
  // The same 1024-request single-scheme trace served with lane coalescing on
  // vs off (every chip is gate-eligible at zero spread). The records differ
  // only in how the worker executes its backlog — per-request DataLink
  // frames vs up-to-64-lane SlicedLink batches — so their ratio is the
  // coalesced-batch speedup of the serving path; main() attaches it to the
  // coalesced record as `serve_coalesce_speedup`.
  constexpr std::size_t kRequests = 1024;
  serve::LinkServerConfig config;
  config.coalesce = coalesce;
  config.start_workers = false;  // first trace runs as one coalesced backlog
  config.queue_capacity = kRequests;
  serve::LinkServer server(served::schemes(), lib(), config);
  const std::vector<serve::TraceRequest> trace =
      serve::synthesize_trace(kRequests, 1, config.chips_per_scheme, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(serve::run_trace_served(server, trace));
  server.shutdown();
  state.counters["frames_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kRequests,
      benchmark::Counter::kIsRate);
}

void BM_ServedTraceCoalesced(benchmark::State& state) { served_trace(state, true); }
BENCHMARK(BM_ServedTraceCoalesced)->UseRealTime();

void BM_ServedTraceEvent(benchmark::State& state) { served_trace(state, false); }
BENCHMARK(BM_ServedTraceEvent)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::string json_out = "BENCH_fig5.json";
  // Strip our flag before benchmark::Initialize sees (and rejects) it.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--bench_json_out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
      json_out = argv[i] + std::strlen(kFlag);
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sfqecc::bench::JsonRecorder recorder(json_out);
  benchmark::RunSpecifiedBenchmarks(&recorder);
  benchmark::Shutdown();
  // Attach the event-vs-sliced throughput ratio (same 64-chip workload, two
  // stage-2 paths) to the sliced record, so the perf trajectory of the
  // bit-sliced win is diffed like any other counter.
  {
    const sfqecc::bench::BenchRecord* event_rec = nullptr;
    sfqecc::bench::BenchRecord* sliced_rec = nullptr;
    for (sfqecc::bench::BenchRecord& rec : recorder.mutable_records()) {
      if (rec.name == "BM_MonteCarloChipEvent64") event_rec = &rec;
      if (rec.name == "BM_MonteCarloChipSliced") sliced_rec = &rec;
    }
    if (event_rec && sliced_rec && sliced_rec->cpu_time_ns > 0.0)
      sliced_rec->counters.push_back(sfqecc::bench::BenchCounter{
          "event_vs_sliced", event_rec->cpu_time_ns / sliced_rec->cpu_time_ns});
  }
  // Same pattern for the serving path: the coalesced-batch speedup (event
  // path vs sliced batches over the identical served trace) rides on the
  // coalesced record, real time because the work happens on the worker
  // thread.
  {
    const sfqecc::bench::BenchRecord* event_rec = nullptr;
    sfqecc::bench::BenchRecord* coalesced_rec = nullptr;
    for (sfqecc::bench::BenchRecord& rec : recorder.mutable_records()) {
      if (rec.name.rfind("BM_ServedTraceEvent", 0) == 0) event_rec = &rec;
      if (rec.name.rfind("BM_ServedTraceCoalesced", 0) == 0) coalesced_rec = &rec;
    }
    if (event_rec && coalesced_rec && coalesced_rec->real_time_ns > 0.0)
      coalesced_rec->counters.push_back(sfqecc::bench::BenchCounter{
          "serve_coalesce_speedup",
          event_rec->real_time_ns / coalesced_rec->real_time_ns});
  }
  return recorder.write() ? 0 : 1;
}
