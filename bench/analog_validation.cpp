// Microscopic validation of the behavioural SFQ model against the RCSJ
// (JoSIM-lite) substrate:
//
//   * SFQ pulse shape: ~mV peak, ~2 ps width, exactly one Phi0 of flux —
//     the paper's "amplitude of the voltage pulse is around 1 mV with 2 ps
//     duration".
//   * JTL propagation delay per stage vs the cell library's JTL delay.
//   * Bias operating margins of a JTL vs the paper's "+/-20 to +/-30 %"
//     design margins — grounding the ppv:: margin model microscopically.
//   * Transmission yield vs critical-current spread: the junction-level
//     analogue of Fig. 5's chip-level failure statistics.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "sfqecc.hpp"
#include "josim/rcsj.hpp"

using namespace sfqecc;

int main() {
  josim::JunctionParams junction;
  junction.c_pf = josim::JunctionParams::capacitance_for_beta_c(
      junction.ic_ma, junction.r_ohm, 1.0);

  std::cout << "=================================================================\n"
               "RCSJ substrate validation (Ic = 0.1 mA, R = 5 Ohm, beta_c = 1)\n"
               "=================================================================\n\n";

  // ---- single SFQ pulse ------------------------------------------------------
  auto drive = [&](double t) {
    double i = 0.07;
    if (t >= 20.0 && t <= 25.0)
      i += 0.12 * 0.5 * (1.0 - std::cos(2 * M_PI * (t - 20.0) / 5.0));
    return i;
  };
  const josim::JunctionTrace pulse = josim::simulate_junction(junction, drive, 60.0);
  double peak = 0.0;
  std::size_t above_half = 0;
  for (double v : pulse.voltage_mv) peak = std::max(peak, v);
  for (double v : pulse.voltage_mv)
    if (v > peak / 2) ++above_half;
  std::printf("SFQ pulse: peak %.2f mV, FWHM %.2f ps, area %.3f Phi0 "
              "(paper: ~1 mV, ~2 ps, 1 Phi0)\n",
              peak, static_cast<double>(above_half) * 0.01, pulse.flux_quanta());

  // ASCII pulse shape around the slip.
  std::vector<double> vt;
  for (std::size_t i = 0; i < pulse.time_ps.size(); i += 25)
    vt.push_back(pulse.voltage_mv[i]);
  util::Series shape{"V(t) [mV]", {}, {}};
  for (std::size_t i = 0; i < vt.size(); ++i) {
    shape.x.push_back(static_cast<double>(i) * 0.25);
    shape.y.push_back(vt[i]);
  }
  util::PlotOptions popt;
  popt.width = 72;
  popt.height = 12;
  popt.x_label = "time (ps)";
  popt.y_label = "junction voltage (mV)";
  std::cout << util::plot_xy({shape}, popt) << '\n';

  // ---- JTL propagation -------------------------------------------------------
  josim::JtlParams jtl;
  jtl.junction = junction;
  const josim::JtlTrace trace = josim::simulate_jtl(jtl, josim::PulseStimulus{});
  const auto& lib = circuit::coldflux_library();
  std::printf("JTL (%zu stages): clean single-pulse = %s, %.2f ps/stage "
              "(behavioural JTL cell: %.1f ps)\n",
              jtl.stages, trace.clean_single_pulse() ? "yes" : "NO",
              trace.stage_delay_ps(), lib.spec(circuit::CellType::kJtl).delay_ps);

  // ---- bias margins -----------------------------------------------------------
  const josim::BiasMargins margins = josim::find_bias_margins(jtl);
  std::printf("JTL bias margins: operating window [%.2f, %.2f] x Ic, "
              "+/-%.0f %% around nominal %.2f (paper: +/-20 to +/-30 %%)\n\n",
              margins.low, margins.high,
              100.0 * margins.relative_margin(jtl.bias_fraction), jtl.bias_fraction);

  // ---- yield vs Ic spread ------------------------------------------------------
  std::cout << "Clean-transmission yield vs critical-current spread "
               "(60 sampled lines each):\n";
  util::TextTable table({"spread", "yield", "note"});
  util::Rng rng(2025);
  for (double spread : {0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    int ok = 0;
    const int chips = 60;
    for (int c = 0; c < chips; ++c) {
      josim::JtlParams sample = jtl;
      sample.ic_scale.resize(sample.stages);
      for (double& s : sample.ic_scale) s = 1.0 + rng.uniform(-spread, spread);
      if (josim::jtl_transmits(sample)) ++ok;
    }
    table.add_row({util::fixed(spread * 100, 0) + " %",
                   std::to_string(ok) + "/" + std::to_string(chips),
                   spread <= 0.20 ? "inside design margins" : "beyond margins"});
  }
  std::cout << table.to_string();
  std::cout << "\nThe junction-level yield knee beyond ~20-30 % spread is the\n"
               "microscopic mechanism the ppv:: cell-margin model abstracts.\n";
  return 0;
}
