// BENCH_*.json record type and (de)serialization, with no google-benchmark
// dependency, so the bench_diff regression tool builds even where the
// microbenchmark cannot.
//
// Schema (flat and stable):
//   { "schema": 1, "benchmarks": [ { "name": ..., "real_time_ns": ...,
//     "cpu_time_ns": ..., "iterations": ...,
//     "counters": {"frames_per_s": ...} }, ... ] }
// The "counters" object is optional per record and carries user counters
// (rates already finalized): throughput for threaded benchmarks — where
// per-thread cpu_time is meaningless and bench_diff compares the counter
// instead — and derived ratios such as event_vs_sliced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sfqecc::bench {

/// One named user counter (value finalized, e.g. a rate in 1/s).
struct BenchCounter {
  std::string name;
  double value = 0.0;
};

/// One normalized benchmark measurement (times in nanoseconds).
struct BenchRecord {
  std::string name;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  std::int64_t iterations = 0;
  std::vector<BenchCounter> counters;  ///< optional, name order as captured
};

/// Serializes records to `path` in the stable schema above. Returns false
/// (and prints to stderr) when the file cannot be written.
bool write_bench_json(const std::string& path, const std::vector<BenchRecord>& records);

/// Parses a BENCH_*.json written by write_bench_json. Returns false (and
/// prints to stderr) on a missing file or schema mismatch.
bool load_bench_json(const std::string& path, std::vector<BenchRecord>& records);

}  // namespace sfqecc::bench
