// System-level study: stop-and-wait ARQ over the paper's error flags.
//
// For each scheme, fabricate chips under +/-20 % PPV and deliver 100 messages
// per chip with retransmission on flagged frames. Reported per scheme:
//   residual error rate  — accepted-but-wrong messages (integrity),
//   mean attempts        — goodput cost of retransmission,
//   surrender rate       — messages undeliverable within 4 attempts.
//
// This is where Hamming(8,4)'s detection capability becomes a system win:
// its flagged frames turn into retries instead of corrupted data, while
// Hamming(7,4) and RM(1,3) silently deliver miscorrections that no protocol
// can catch. It quantifies the paper's conclusion at the protocol layer.
#include <cstdio>
#include <iostream>

#include "link/arq.hpp"
#include "sfqecc.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  const std::size_t chips = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;
  const std::size_t messages = 100;
  const auto& library = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(library);

  std::printf("Stop-and-wait ARQ over the cryogenic link: %zu chips x %zu messages,"
              " +/-20 %% spread, max 4 attempts\n\n",
              chips, messages);

  util::TextTable table({"Scheme", "residual err rate", "mean attempts",
                         "surrendered", "chips w/ zero residual"});
  for (const core::PaperScheme& scheme : schemes) {
    link::DataLinkConfig config;
    config.sim.record_pulses = false;
    link::DataLink dlink(*scheme.encoder, library, scheme.code.get(),
                         scheme.decoder.get(), config);

    ppv::SpreadSpec spread;
    link::ArqStats total;
    std::size_t clean_chips = 0;
    for (std::size_t c = 0; c < chips; ++c) {
      util::Rng ppv_rng(101, c);
      const ppv::ChipSample chip =
          ppv::sample_chip(scheme.encoder->netlist, library, spread, ppv_rng);
      dlink.install_chip(chip);
      dlink.reseed_noise(util::substream_seed(202, c));
      util::Rng msg_rng(303, c), chan_rng(404, c);
      const link::ArqStats stats =
          link::run_arq_session(dlink, messages, msg_rng, chan_rng);
      total.messages += stats.messages;
      total.delivered_ok += stats.delivered_ok;
      total.residual_errors += stats.residual_errors;
      total.surrendered += stats.surrendered;
      total.total_frames += stats.total_frames;
      if (stats.residual_errors == 0) ++clean_chips;
    }
    table.add_row(
        {scheme.name, util::percent(total.residual_error_rate(), 2),
         util::fixed(total.mean_attempts(), 3),
         util::percent(static_cast<double>(total.surrendered) /
                           static_cast<double>(total.messages),
                       2),
         util::percent(static_cast<double>(clean_chips) / static_cast<double>(chips),
                       1)});
  }
  std::cout << table.to_string() << '\n';
  std::cout <<
      "Hamming(8,4) trades a slightly higher attempt count (retries on\n"
      "detected frames) for an order-of-magnitude lower residual error rate —\n"
      "detection capability converted into delivered-data integrity. The\n"
      "schemes without reliable detection cannot buy integrity with retries.\n";
  return 0;
}
