// Example: pulse-level waveform viewer (the paper's Fig. 3 as a tool).
//
// Simulates any of the three encoders for a user-supplied message at 5 GHz,
// with thermal jitter, and prints the pulse trains of every net class plus
// the DC output levels. Optionally writes a CSV of rasterized analog traces.
//
//   $ ./waveform_viewer [h74|h84|rm13] [message-bits] [csv-path]
//   $ ./waveform_viewer h84 1011 waves.csv
#include <fstream>
#include <iostream>
#include <string>

#include "sfqecc.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "h84";
  const std::string message_bits = argc > 2 ? argv[2] : "1011";
  const std::string csv_path = argc > 3 ? argv[3] : "";

  const auto& library = circuit::coldflux_library();
  const core::SchemeId id = which == "h74"  ? core::SchemeId::kHamming74
                            : which == "rm13" ? core::SchemeId::kRm13
                                              : core::SchemeId::kHamming84;
  const core::PaperScheme scheme = core::make_scheme(id, library);
  if (message_bits.size() != 4 ||
      message_bits.find_first_not_of("01") != std::string::npos) {
    std::cerr << "message must be 4 bits of 0/1\n";
    return 2;
  }
  const code::BitVec message = code::BitVec::from_string(message_bits);
  const code::BitVec expected = scheme.code->encode(message);

  constexpr double kPeriod = 200.0;  // 5 GHz
  constexpr double kWindow = 800.0;

  sim::SimConfig config;
  config.jitter_sigma_ps = 0.8;
  sim::EventSimulator simulator(scheme.encoder->netlist, library, config);
  for (std::size_t b = 0; b < 4; ++b)
    if (message.get(b))
      simulator.inject_pulse(scheme.encoder->message_inputs[b], 100.0);
  simulator.inject_clock(scheme.encoder->clock_input, kPeriod, kPeriod,
                         kPeriod * 2 + 0.5);
  simulator.run_until(kWindow);

  std::cout << scheme.name << " encoder, message " << message_bits << " @ 0.1 ns, "
            << "5 GHz clock\nexpected codeword: " << expected.to_string() << "\n\n";

  auto strip = [&](const std::string& label, const std::vector<double>& times) {
    std::printf("%-5s %s\n", label.c_str(),
                util::pulse_strip(times, 0.0, kWindow, 80).c_str());
  };
  for (std::size_t i = 0; i < 4; ++i)
    strip("m" + std::to_string(i + 1),
          simulator.pulses(scheme.encoder->message_inputs[i]));
  strip("clk", simulator.pulses(scheme.encoder->clock_input));
  std::cout << '\n';

  code::BitVec word(scheme.encoder->codeword_outputs.size());
  for (std::size_t j = 0; j < word.size(); ++j) {
    const circuit::NetId out = scheme.encoder->codeword_outputs[j];
    word.set(j, simulator.dc_level(out));
    strip("c" + std::to_string(j + 1), simulator.dc_transitions(out));
  }
  std::cout << "\nDC levels after 2 clock cycles: " << word.to_string()
            << (word == expected ? "  [matches]" : "  [MISMATCH]") << '\n';
  std::printf("simulator processed %zu events\n", simulator.events_processed());

  if (!csv_path.empty()) {
    sim::RasterOptions raster;
    raster.t1_ps = kWindow;
    raster.noise_sigma_uv = 15.0;
    std::vector<sim::AnalogTrace> traces;
    for (std::size_t i = 0; i < 4; ++i) {
      sim::RasterOptions in = raster;
      in.pulse_amplitude_uv = 600.0;
      in.noise_seed = 1 + i;
      traces.push_back(sim::rasterize_pulses(
          "m" + std::to_string(i + 1),
          simulator.pulses(scheme.encoder->message_inputs[i]), in));
    }
    for (std::size_t j = 0; j < word.size(); ++j) {
      sim::RasterOptions out = raster;
      out.noise_seed = 10 + j;
      traces.push_back(sim::rasterize_dc(
          "c" + std::to_string(j + 1),
          simulator.dc_transitions(scheme.encoder->codeword_outputs[j]), 400.0, out));
    }
    std::ofstream(csv_path) << sim::traces_to_csv(traces);
    std::cout << "wrote " << csv_path << '\n';
  }
  return word == expected ? 0 : 1;
}
