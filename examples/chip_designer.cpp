// Example: design your own SFQ encoder.
//
// Takes a generator matrix (rows of 0/1 strings), runs the full synthesis
// pipeline (Paar CSE -> path balancing -> SFQ-to-DC -> clock tree -> fan-out
// legalization), verifies the netlist functionally at pulse level against
// the code, and prints the circuit report a designer would need: cell
// inventory, JJ/power/area budget, latency and the per-weight error behaviour
// of the code under syndrome decoding.
//
//   $ ./chip_designer                 # the paper's Hamming(8,4)
//   $ ./chip_designer 1110010 0110101 1010110   # custom rows (equal length)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sfqecc.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  std::vector<std::string> rows;
  for (int i = 1; i < argc; ++i) rows.emplace_back(argv[i]);
  if (rows.empty())
    rows = {"11100001", "10011001", "01010101", "11010010"};  // paper Eq. (1)

  code::Gf2Matrix g = code::Gf2Matrix::from_strings(rows);
  const code::LinearCode code("custom(" + std::to_string(g.cols()) + "," +
                                  std::to_string(g.rows()) + ")",
                              std::move(g));
  const auto& library = circuit::coldflux_library();

  std::cout << "Code: " << code.name() << ", rate " << util::fixed(code.rate(), 3)
            << ", dmin " << code.dmin() << "\nGenerator:\n"
            << code.generator().to_string() << '\n';

  // ---- synthesis -----------------------------------------------------------
  const circuit::BuiltEncoder built = circuit::build_encoder(code, library);
  const circuit::NetlistStats stats =
      circuit::compute_stats(built.netlist, library, built.clock_input);
  std::printf("Synthesized SFQ encoder:\n  %s\n", stats.inventory().c_str());
  std::printf("  data splitters %zu, clock splitters %zu\n", stats.data_splitters,
              stats.clock_splitters);
  std::printf("  %zu JJs, %.1f uW static at 4.2 K, %.3f mm^2, %zu-clock latency\n\n",
              stats.jj_count, stats.static_power_uw, stats.area_mm2,
              built.logic_depth);

  // ---- pulse-level functional sign-off --------------------------------------
  std::size_t verified = 0;
  const std::uint64_t total = std::uint64_t{1} << code.k();
  for (std::uint64_t m = 0; m < total; ++m) {
    const code::BitVec message = code::BitVec::from_u64(code.k(), m);
    sim::SimConfig config;
    config.record_pulses = false;
    sim::EventSimulator simulator(built.netlist, library, config);
    for (std::size_t b = 0; b < code.k(); ++b)
      if (message.get(b)) simulator.inject_pulse(built.message_inputs[b], 100.0);
    const double last = 200.0 * static_cast<double>(built.logic_depth);
    if (built.logic_depth > 0)
      simulator.inject_clock(built.clock_input, 200.0, 200.0, last + 0.5);
    simulator.run_until(std::max(last, 100.0) + 60.0);
    code::BitVec word(code.n());
    for (std::size_t j = 0; j < code.n(); ++j)
      word.set(j, simulator.dc_level(built.codeword_outputs[j]));
    if (word == code.encode(message)) ++verified;
  }
  std::printf("Pulse-level sign-off: %zu/%llu messages encode correctly\n\n", verified,
              static_cast<unsigned long long>(total));

  // ---- code quality under syndrome decoding ---------------------------------
  const code::SyndromeDecoder decoder(code);
  const auto analysis = code::analyze_error_patterns(decoder);
  util::TextTable table({"error weight", "patterns", "corrected", "detected",
                         "miscorrected", "invisible"});
  for (const auto& w : analysis.by_weight)
    table.add_row({std::to_string(w.weight), std::to_string(w.patterns),
                   std::to_string(w.corrected), std::to_string(w.detected),
                   std::to_string(w.miscorrected), std::to_string(w.undetected)});
  std::cout << "Error behaviour under " << decoder.name() << ":\n"
            << table.to_string();
  std::printf("guaranteed correction up to %zu error(s); pin budget: %zu output "
              "channels + clock + %zu message lines\n",
              analysis.guaranteed_correct, code.n(), code.k());
  return verified == total ? 0 : 1;
}
