// Example: the full cryogenic data link of the paper's Fig. 1.
//
// Builds the Hamming(8,4) link (SFQ encoder netlist -> SFQ-to-DC drivers ->
// cryo cables -> threshold receiver -> SEC-DED decoder with error flags),
// fabricates a few virtual chips under +/-20 % process spread, and shows how
// channel failures are corrected or flagged frame by frame.
//
//   $ ./datalink_demo [num-chips]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  const std::size_t num_chips = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6;
  const auto& library = circuit::coldflux_library();

  const core::PaperScheme scheme = core::make_scheme(core::SchemeId::kHamming84, library);
  std::cout << "Fig. 1 data link with the " << scheme.name << " encoder\n"
            << "  circuit: "
            << circuit::compute_stats(scheme.encoder->netlist, library,
                                      scheme.encoder->clock_input)
                   .inventory()
            << "\n  decoder: " << scheme.decoder->name() << "\n\n";

  link::DataLinkConfig config;
  config.channel.noise_sigma_mv = 0.05;  // quiet receiver
  config.sim.jitter_sigma_ps = 0.8;      // 4.2 K thermal jitter
  link::DataLink dlink(*scheme.encoder, library, scheme.code.get(),
                       scheme.decoder.get(), config);

  ppv::SpreadSpec spread;  // +/-20 % uniform, the paper's setting
  util::Rng chip_rng(2025);
  util::Rng msg_rng(99);

  util::TextTable table({"chip", "flaky cells", "hard-failed", "frames", "corrected",
                         "flagged", "erroneous"});
  for (std::size_t c = 0; c < num_chips; ++c) {
    const ppv::ChipSample chip =
        ppv::sample_chip(scheme.encoder->netlist, library, spread, chip_rng);
    dlink.install_chip(chip);
    dlink.reseed_noise(1000 + c);

    const std::size_t frames = 100;
    std::size_t corrected = 0, flagged = 0, erroneous = 0;
    for (std::size_t f = 0; f < frames; ++f) {
      const code::BitVec message = code::BitVec::from_u64(4, msg_rng.below(16));
      const link::FrameResult frame = dlink.send(message, msg_rng);
      if (frame.flagged)
        ++flagged;
      else if (frame.message_error)
        ++erroneous;
      else if (frame.encoder_bit_errors + frame.channel_bit_errors > 0)
        ++corrected;
    }
    table.add_row({std::to_string(c), std::to_string(chip.flaky_cells()),
                   std::to_string(chip.hard_failed_cells()), std::to_string(frames),
                   std::to_string(corrected), std::to_string(flagged),
                   std::to_string(erroneous)});
  }
  std::cout << table.to_string() << '\n';

  // One annotated frame on a chip with a dead output driver.
  std::cout << "Frame anatomy on a chip with a dead c3 output driver:\n";
  ppv::ChipSample chip;
  chip.faults.assign(scheme.encoder->netlist.cell_count(), sim::CellFault{});
  chip.health_ratios.assign(scheme.encoder->netlist.cell_count(), 0.0);
  const auto& c3 = scheme.encoder->netlist.net(scheme.encoder->codeword_outputs[2]);
  chip.faults[c3.driver_cell] = sim::CellFault{sim::FaultMode::kDead, 0.0};
  dlink.install_chip(chip);

  const code::BitVec message = code::BitVec::from_string("1011");
  const link::FrameResult frame = dlink.send(message, msg_rng);
  std::printf("  sent message:        %s\n", frame.sent_message.to_string().c_str());
  std::printf("  reference codeword:  %s\n", frame.reference_codeword.to_string().c_str());
  std::printf("  transmitted word:    %s   (encoder bit errors: %zu)\n",
              frame.transmitted_word.to_string().c_str(), frame.encoder_bit_errors);
  std::printf("  received word:       %s   (channel bit errors: %zu)\n",
              frame.received_word.to_string().c_str(), frame.channel_bit_errors);
  std::printf("  delivered message:   %s   [%s]\n",
              frame.delivered_message.to_string().c_str(),
              frame.flagged ? "FLAGGED" : frame.message_error ? "WRONG" : "ok");
  return 0;
}
