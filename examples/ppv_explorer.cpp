// Example: explore the effect of process-parameter-variation strength.
//
// Sweeps the JoSIM-style spread from 5 % to 30 % and reports, for each
// transmission scheme, the probability of a chip delivering all of its
// messages without error — extending the paper's single +/-20 % operating
// point (Fig. 5) into a full sensitivity curve.
//
//   $ ./ppv_explorer [chips-per-point] [messages-per-chip]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

int main(int argc, char** argv) {
  const std::size_t chips = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;
  const std::size_t messages =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100;

  const auto& library = circuit::coldflux_library();
  const std::vector<core::PaperScheme> schemes = core::make_all_schemes(library);
  const std::vector<link::SchemeSpec> specs = core::scheme_specs(schemes);

  std::printf("P(zero erroneous messages in %zu) vs parameter spread "
              "(%zu chips per point)\n\n",
              messages, chips);

  const double spreads[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  util::TextTable table({"spread", specs[0].name, specs[1].name, specs[2].name,
                         specs[3].name, "best scheme"});
  std::vector<util::Series> series(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) series[s].label = specs[s].name;

  for (double spread : spreads) {
    link::MonteCarloConfig config;
    config.chips = chips;
    config.messages_per_chip = messages;
    config.spread.fraction = spread;
    config.link.sim.record_pulses = false;
    const auto outcomes = link::run_monte_carlo(specs, library, config);

    std::vector<std::string> row{util::fixed(spread * 100, 0) + " %"};
    std::size_t best = 0;
    for (std::size_t s = 0; s < outcomes.size(); ++s) {
      row.push_back(util::percent(outcomes[s].p_zero, 1));
      series[s].x.push_back(spread * 100);
      series[s].y.push_back(outcomes[s].p_zero);
      if (outcomes[s].p_zero > outcomes[best].p_zero) best = s;
    }
    row.push_back(outcomes[best].name);
    table.add_row(row);
  }
  std::cout << table.to_string() << '\n';

  util::PlotOptions plot;
  plot.width = 70;
  plot.height = 18;
  plot.x_label = "parameter spread (%)";
  plot.y_label = "P(zero erroneous messages)";
  std::cout << util::plot_xy(series, plot);

  std::cout << "\nAt small spreads every scheme is clean; as PPV grows the coded\n"
               "links separate from the raw link, and beyond ~25 % the large\n"
               "RM(1,3) circuit pays for its extra JJs — the paper's trade-off.\n";
  return 0;
}
