// Quickstart: resolve schemes from the string-addressable catalog, encode a
// 4-bit message with each, corrupt it, decode it, and print the synthesized
// SFQ circuit cost of each encoder.
//
//   $ ./quickstart [descriptor...]      (default: the paper's three encoders)
//   $ ./quickstart hsiao:8,4 bch:15,7 rm:1,3/majority
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sfqecc.hpp"

int main(int argc, char** argv) {
  using namespace sfqecc;

  const auto& library = circuit::coldflux_library();
  std::cout << "sfqecc quickstart — lightweight ECC encoders for SFQ links\n"
            << "cell library: " << library.name() << "\n\n";

  // Scheme descriptors: family[:params][/decoder][@synthesis], resolved by
  // the catalog (see core/scheme_catalog.hpp or campaign_runner
  // --list-schemes for the full grammar and family list).
  std::vector<std::string> descriptors;
  for (int i = 1; i < argc; ++i) descriptors.push_back(argv[i]);
  if (descriptors.empty())
    descriptors = {"hamming:7,4", "hamming:8,4x", "rm:1,3"};

  // Message bits for any k: the first k bits of a fixed pattern.
  const auto demo_message = [](std::size_t k) {
    code::BitVec message(k);
    const std::uint64_t pattern = 0xB3A59C6D5B1E97ACull;  // starts 1011...
    for (std::size_t i = 0; i < k; ++i)
      message.set(i, ((pattern >> (63 - (i % 64))) & 1) != 0);
    return message;
  };

  for (const std::string& descriptor : descriptors) {
    core::Scheme scheme;
    try {
      scheme = core::SchemeCatalog::builtin().resolve(descriptor, library);
    } catch (const ContractViolation& e) {
      std::cerr << "quickstart: " << e.what() << '\n';
      return 2;
    }
    if (!scheme.has_code()) {
      std::cout << scheme.name << "  [" << scheme.descriptor << "]: uncoded link, "
                << scheme.encoder->message_inputs.size() << " pass-through bits\n\n";
      continue;
    }
    // 1. Encode.
    const code::BitVec message = demo_message(scheme.code->k());
    const code::BitVec codeword = scheme.code->encode(message);
    std::cout << "message:  " << message.to_string() << '\n';
    std::cout << scheme.name << "  [" << scheme.descriptor
              << ", n=" << scheme.code->n() << ", k=" << scheme.code->k()
              << ", dmin=" << scheme.code->dmin() << "]\n";
    std::cout << "  codeword:       " << codeword.to_string() << '\n';

    // 2. Corrupt one bit and decode.
    code::BitVec received = codeword;
    received.flip(2);
    const code::DecodeResult result = scheme.decoder->decode(received);
    std::cout << "  received:       " << received.to_string()
              << "  (bit 3 flipped)\n";
    std::cout << "  decoded:        " << result.message.to_string() << "  ["
              << (result.status == code::DecodeStatus::kCorrected ? "corrected"
                  : result.status == code::DecodeStatus::kNoError ? "clean"
                                                                  : "detected")
              << " by " << scheme.decoder->name()
              << ", recovered=" << (result.message == message ? "yes" : "NO")
              << "]\n";

    // 3. Circuit cost of the synthesized SFQ encoder (Table II of the paper).
    const circuit::NetlistStats stats = circuit::compute_stats(
        scheme.encoder->netlist, library, scheme.encoder->clock_input);
    std::printf(
        "  SFQ circuit:    %s\n"
        "                  %zu JJs, %.1f uW static, %.3f mm^2, latency %zu clocks\n\n",
        stats.inventory().c_str(), stats.jj_count, stats.static_power_uw,
        stats.area_mm2, scheme.encoder->logic_depth);
  }

  std::cout << "Next steps: campaign_runner --list-schemes shows the whole catalog;\n"
               "see examples/datalink_demo, examples/waveform_viewer,\n"
               "examples/ppv_explorer and the bench/ binaries that regenerate the\n"
               "paper's tables and figures.\n";
  return 0;
}
