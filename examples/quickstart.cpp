// Quickstart: encode a 4-bit message with each of the paper's codes, corrupt
// it, decode it, and print the synthesized SFQ circuit cost of each encoder.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "sfqecc.hpp"

int main() {
  using namespace sfqecc;

  const auto& library = circuit::coldflux_library();
  std::cout << "sfqecc quickstart — lightweight ECC encoders for SFQ links\n"
            << "cell library: " << library.name() << "\n\n";

  const code::BitVec message = code::BitVec::from_string("1011");
  std::cout << "message: " << message.to_string() << "\n\n";

  for (auto id : {core::SchemeId::kHamming74, core::SchemeId::kHamming84,
                  core::SchemeId::kRm13}) {
    const core::PaperScheme scheme = core::make_scheme(id, library);

    // 1. Encode.
    const code::BitVec codeword = scheme.code->encode(message);
    std::cout << scheme.name << "  [n=" << scheme.code->n()
              << ", k=" << scheme.code->k() << ", dmin=" << scheme.code->dmin()
              << "]\n";
    std::cout << "  codeword:       " << codeword.to_string() << '\n';

    // 2. Corrupt one bit and decode.
    code::BitVec received = codeword;
    received.flip(2);
    const code::DecodeResult result = scheme.decoder->decode(received);
    std::cout << "  received:       " << received.to_string()
              << "  (bit 3 flipped)\n";
    std::cout << "  decoded:        " << result.message.to_string() << "  ["
              << (result.status == code::DecodeStatus::kCorrected ? "corrected"
                  : result.status == code::DecodeStatus::kNoError ? "clean"
                                                                  : "detected")
              << ", recovered=" << (result.message == message ? "yes" : "NO")
              << "]\n";

    // 3. Circuit cost of the synthesized SFQ encoder (Table II of the paper).
    const circuit::NetlistStats stats = circuit::compute_stats(
        scheme.encoder->netlist, library, scheme.encoder->clock_input);
    std::printf(
        "  SFQ circuit:    %s\n"
        "                  %zu JJs, %.1f uW static, %.3f mm^2, latency %zu clocks\n\n",
        stats.inventory().c_str(), stats.jj_count, stats.static_power_uw,
        stats.area_mm2, scheme.encoder->logic_depth);
  }

  std::cout << "Next steps: see examples/datalink_demo, examples/waveform_viewer,\n"
               "examples/ppv_explorer and the bench/ binaries that regenerate the\n"
               "paper's tables and figures.\n";
  return 0;
}
