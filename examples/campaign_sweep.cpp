// Campaign-engine demo: a spread x ARQ x code sweep over the full link stack.
//
// Sweeps the process-parameter spread over {10 %, 20 %, 30 %} crossed with
// ARQ {off, stop-and-wait(4)} for all four transmission schemes. The
// (20 %, arq=off) cell *is* the paper's Fig. 5 experiment: because every cell
// runs under the campaign seed with the common-random-numbers substream
// layout, that cell's outcomes are bit-identical to link::run_monte_carlo
// (and to the fig5_ppv_cdf driver) at the same chips / messages / seed —
// which this demo verifies before printing the sweep.
//
// The ARQ axis also demonstrates the staged fabricate->simulate pipeline:
// the off/on cells of each spread share a fabricated chip population, so the
// engine's artifact cache fabricates each chip once and reuses it in the
// sibling cell. The demo runs the sweep again with the cache disabled and
// checks the two JSON reports agree byte for byte (cache transparency).
//
// Usage: campaign_sweep [chips] [messages-per-chip]   (defaults: 200, 50)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sfqecc.hpp"

using namespace sfqecc;

namespace {

std::size_t parse_count(const char* arg, const char* what) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(arg, &end, 10);
  // strtoull accepts a sign ("-1" wraps to ULLONG_MAX); require a digit.
  if (arg[0] < '0' || arg[0] > '9' || end == arg || *end != '\0' || parsed == 0) {
    std::fprintf(stderr, "campaign_sweep: %s must be a positive integer, got '%s'\n",
                 what, arg);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  engine::CampaignSpec spec;
  spec.chips = argc > 1 ? parse_count(argv[1], "chips") : 200;
  spec.messages_per_chip = argc > 2 ? parse_count(argv[2], "messages-per-chip") : 50;
  spec.spreads = {{0.10, ppv::SpreadDistribution::kUniform},
                  {core::paper::kFig5Spread, ppv::SpreadDistribution::kUniform},
                  {0.30, ppv::SpreadDistribution::kUniform}};
  link::ChannelModel channel;
  channel.noise_sigma_mv = 0.04;  // Fig. 5 receiver noise
  spec.channels = {channel};
  spec.faults = {engine::FaultSpec{0.8}};  // thermal jitter at 4.2 K
  spec.arq_modes = {{false, 1}, {true, 4}};

  // The four paper schemes, resolved from their canonical catalog
  // descriptors (none, rm:1,3, hamming:7,4, hamming:8,4x) — bit-identical
  // to the historical SchemeId-built schemes.
  const auto& library = circuit::coldflux_library();
  std::vector<core::Scheme> paper_schemes;
  for (const std::string& descriptor : core::paper_descriptors())
    paper_schemes.push_back(
        core::SchemeCatalog::builtin().resolve(descriptor, library));
  const std::vector<link::SchemeSpec> schemes = core::scheme_specs(paper_schemes);

  std::printf("Campaign sweep: spread in {10, 20, 30} %% x ARQ {off, 4} x %zu schemes, "
              "%zu chips x %zu messages\n\n",
              schemes.size(), spec.chips, spec.messages_per_chip);

  // Cell order (ARQ innermost): 2i = (spread i, arq off), 2i+1 = (spread i, arq 4).
  const engine::CampaignResult result = engine::run_campaign(spec, schemes, library);

  // ---- cross-check 1: the (20 %, arq=off) cell equals run_monte_carlo ------
  link::MonteCarloConfig mc;
  mc.chips = spec.chips;
  mc.messages_per_chip = spec.messages_per_chip;
  mc.seed = spec.seed;
  mc.spread = spec.spreads[1];
  mc.link.channel = channel;
  mc.link.sim.jitter_sigma_ps = 0.8;
  mc.link.sim.record_pulses = false;
  const auto mc_outcomes = link::run_monte_carlo(schemes, library, mc);
  bool identical = true;
  for (std::size_t s = 0; s < schemes.size(); ++s)
    identical &= mc_outcomes[s].errors_per_chip ==
                 result.cells[2].schemes[s].errors_per_chip;
  std::printf("Fig. 5 cell vs run_monte_carlo: %s\n",
              identical ? "bit-identical" : "MISMATCH (bug!)");

  // ---- cross-check 2: cache transparency -----------------------------------
  // The off/on ARQ cells of each spread share fabricated chips, so the run
  // above fabricated each chip once and served the sibling cell from the
  // artifact cache. Re-running with the cache disabled must reproduce the
  // report byte for byte.
  engine::RunnerOptions uncached_options;
  uncached_options.artifact_cache_bytes = 0;
  const engine::CampaignResult uncached =
      engine::run_campaign(spec, schemes, library, uncached_options);
  const bool transparent = engine::campaign_json(spec, result) ==
                           engine::campaign_json(spec, uncached);
  const engine::ArtifactCacheStats& cache = result.artifact_cache;
  std::printf("artifact cache: %llu hits, %llu misses (%.1f MiB resident); "
              "cached vs uncached report: %s\n\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<double>(cache.bytes) / (1 << 20),
              transparent ? "byte-identical" : "MISMATCH (bug!)");

  // ---- P(N=0) across the sweep (plain frames) ------------------------------
  util::TextTable table({"spread", schemes[0].name, schemes[1].name, schemes[2].name,
                         schemes[3].name});
  for (std::size_t i = 0; i < spec.spreads.size(); ++i) {
    const engine::CellResult& cell = result.cells[2 * i];
    std::vector<std::string> row{util::percent(cell.cell.spread.fraction, 0)};
    for (const engine::SchemeCellResult& scheme : cell.schemes)
      row.push_back(util::percent(scheme.p_zero, 1));
    table.add_row(row);
  }
  std::printf("P(N = 0) per scheme, ARQ off:\n%s\n", table.to_string().c_str());

  // ---- ARQ goodput cost: frames per chip under stop-and-wait ---------------
  util::TextTable arq_table({"spread", schemes[0].name, schemes[1].name,
                             schemes[2].name, schemes[3].name});
  for (std::size_t i = 0; i < spec.spreads.size(); ++i) {
    const engine::CellResult& cell = result.cells[2 * i + 1];
    std::vector<std::string> row{util::percent(cell.cell.spread.fraction, 0)};
    for (const engine::SchemeCellResult& scheme : cell.schemes)
      row.push_back(util::fixed(scheme.mean_frames, 1));
    arq_table.add_row(row);
  }
  std::printf("frames per chip with ARQ(4) (%zu messages sent):\n%s\n",
              spec.messages_per_chip, arq_table.to_string().c_str());

  // The paper's qualitative story, now across the whole sweep: encoders beat
  // the raw link at every spread, and everything degrades as spread grows.
  std::vector<util::Series> series;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    util::Series line;
    line.label = schemes[s].name;
    for (std::size_t i = 0; i < spec.spreads.size(); ++i) {
      const engine::CellResult& cell = result.cells[2 * i];
      line.x.push_back(cell.cell.spread.fraction * 100.0);
      line.y.push_back(cell.schemes[s].p_zero);
    }
    series.push_back(std::move(line));
  }
  util::PlotOptions plot;
  plot.width = 72;
  plot.height = 18;
  plot.x_label = "parameter spread, %";
  plot.y_label = "P(N = 0)";
  std::cout << util::plot_xy(series, plot);
  return identical && transparent ? 0 : 1;
}
